// Package pairedmsg implements the paired message protocol of §4.2: a
// connectionless, datagram-based layer that exchanges reliably
// delivered, variable-length call and return messages, identified by
// call numbers that are unique among all exchanges between a given
// pair of processes.
//
// The protocol segments messages larger than one datagram, numbers the
// segments, and uses acknowledgment and retransmission to mask loss
// and duplication (§4.2.2). Acknowledgments are explicit (a control
// segment with the ack bit) or implicit (a return segment acknowledges
// the call segments bearing the same call number). Crash detection
// uses probes — please-ack control segments — with a retry bound
// (§4.2.3): too low risks false crash reports, too high delays
// detection; both knobs are in Options.
//
// One deliberate deviation from the 1985 implementation is documented
// in DESIGN.md: because a Go process multiplexes many threads over one
// endpoint (Circus ran one heavyweight process per thread), the
// "later call number implicitly acknowledges the previous return"
// rule is unsound here — exchanges no longer strictly alternate.
// Instead, a completed return message is explicitly acknowledged at
// once, and the exact-match implicit acknowledgment (return n acks
// call n) is kept. The wire format of Figure 4.2 is unchanged.
//
// All protocol state — transfer tables, call-number counters, RTT
// estimators, liveness watches — is sharded per peer: each remote
// address gets its own session struct with its own lock, reached
// through a lock-free peer table, so concurrent exchanges with
// different peers never contend (see DESIGN.md "Concurrency model").
// Call numbers were always scoped to a process pair (§4.2), so the
// sharding changes no protocol semantics.
package pairedmsg

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/trace"
	"circus/internal/transport"
)

// RetransmitStrategy selects which unacknowledged segments each
// retransmission pass resends (§4.2.4 discusses both).
type RetransmitStrategy int

const (
	// RetransmitFirst resends only the first unacknowledged segment,
	// as the Circus protocol does by default.
	RetransmitFirst RetransmitStrategy = iota
	// RetransmitAll resends every unacknowledged segment, appropriate
	// for lossier links (§4.2.4).
	RetransmitAll
)

// Options tunes the protocol timers. The zero value is replaced by
// defaults suitable for tests and the simulated network.
type Options struct {
	// RetransmitInterval is the pause between retransmission passes
	// for an unacknowledged message. In adaptive mode it is only the
	// initial estimate used before any round trip has been measured.
	RetransmitInterval time.Duration
	// MaxRetries bounds retransmission passes with no progress before
	// the peer is declared crashed (§4.2.3). In adaptive mode the
	// crash bound is MaxRetryTime instead, so that backoff does not
	// delay crash detection.
	MaxRetries int
	// Adaptive replaces the fixed retransmission interval with a
	// per-peer RTT estimate (the smoothed mean plus four times the
	// mean deviation, sampled only from exchanges that were never
	// retransmitted) and exponential backoff between passes, the
	// other side of the tradeoff §4.2.4 discusses: fewer duplicate
	// segments on slow or congested links, faster recovery on fast
	// ones. The fixed mode remains for the vaxsim ablations.
	Adaptive bool
	// MinRTO and MaxRTO clamp the adaptive retransmission interval.
	// Zero means 2ms and 25x RetransmitInterval respectively.
	MinRTO time.Duration
	MaxRTO time.Duration
	// MaxRetryTime bounds, in adaptive mode, how long retransmission
	// proceeds with no progress before the peer is declared crashed.
	// Zero means MaxRetries x RetransmitInterval — the same crash
	// detection budget as fixed mode.
	MaxRetryTime time.Duration
	// ProbeInterval is the pause between crash-detection probes while
	// awaiting a return message (§4.2.3).
	ProbeInterval time.Duration
	// ProbeMissLimit is the number of consecutive unanswered probes
	// after which the peer is declared crashed.
	ProbeMissLimit int
	// Strategy selects the retransmission strategy.
	Strategy RetransmitStrategy
	// CompletedTTL is how long the record of a completed exchange is
	// retained to suppress replay of delayed duplicate segments
	// (§4.2.4).
	CompletedTTL time.Duration
	// CallBase, when nonzero, sets the starting call number for fresh
	// peers (and the multicast counter). Zero derives a base from the
	// process-wide connection creation order and a per-launch salt, so
	// that a restarted process (whose call numbers would otherwise
	// reset to 1) does not reuse numbers its predecessor completed
	// within CompletedTTL — reused numbers would be suppressed as
	// duplicate replays. Call numbers are content the seeded
	// simulation's fault injection never inspects, so campaign
	// reproducibility is unaffected.
	CallBase uint32
	// IncomingBuffer is the capacity of the reassembled-message queue
	// behind Incoming(). Zero means 256. When the queue is full a
	// completed message is not handed up: the attempt is counted
	// (Stats.DeliveryDrops, trace event msg.delivery-drop) and the
	// final acknowledgment withheld, so the sender's retransmission
	// drives a later redelivery attempt — backpressure without losing
	// the at-most-once guarantee (see DESIGN.md "Concurrency model").
	IncomingBuffer int
	// AckDelay bounds how long a non-urgent acknowledgment may wait
	// for a chance to piggyback on an outbound segment to the same
	// peer before a cumulative standalone ack is sent. Zero derives
	// the bound from the retransmission timers (min(MinRTO/2, srtt/4)
	// in adaptive mode, RetransmitInterval/8 capped at 5ms in fixed
	// mode) so a delayed ack can never be mistaken for a loss.
	// Negative disables delaying: every ack goes out at once.
	AckDelay time.Duration
	// CoalesceWindow bounds how long a data segment may wait in the
	// per-peer small-send queue for company when the session has
	// other transfers in flight (segments of a session's only
	// in-flight transfer are never held back, so serial exchanges
	// keep their latency). The window is a backstop: the wait ends
	// early the moment another transfer's segments arrive, so under
	// concurrent load the cost is one inter-arrival gap. Zero means
	// 150µs; negative disables pacing entirely, coalescing only what
	// is already queued.
	CoalesceWindow time.Duration
	// Trace, when set, receives a structured event for every
	// protocol action: sends, retransmissions, acks, probes, crash
	// suspicions, RTT samples, duplicate suppressions, deliveries.
	// Nil disables tracing at near-zero cost.
	Trace trace.Sink
}

func (o Options) withDefaults() Options {
	if o.RetransmitInterval == 0 {
		o.RetransmitInterval = 40 * time.Millisecond
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 25
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 100 * time.Millisecond
	}
	if o.ProbeMissLimit == 0 {
		o.ProbeMissLimit = 8
	}
	if o.CompletedTTL == 0 {
		o.CompletedTTL = 30 * time.Second
	}
	if o.MinRTO == 0 {
		o.MinRTO = 2 * time.Millisecond
	}
	if o.MaxRTO == 0 {
		o.MaxRTO = 25 * o.RetransmitInterval
	}
	if o.MaxRetryTime == 0 {
		o.MaxRetryTime = time.Duration(o.MaxRetries) * o.RetransmitInterval
	}
	if o.IncomingBuffer == 0 {
		o.IncomingBuffer = 256
	}
	if o.CoalesceWindow == 0 {
		o.CoalesceWindow = 150 * time.Microsecond
	}
	return o
}

// paceInFlightMin is how many transfers a session must have in flight
// before a new transfer's segments are paced (held briefly for
// companions to coalesce with). Below it a datagram saved is not worth
// the wait: with only a handful of concurrent exchanges the companion
// arrives so rarely that pacing spends the whole CoalesceWindow on the
// critical path and throughput drops, while delayed acks already
// capture most of the wire savings. At and above it companions arrive
// within a fraction of the window, so bundles form almost for free.
const paceInFlightMin = 6

// ErrPeerDown reports that retransmissions or probes to a peer went
// unanswered past the configured bound; the peer is presumed crashed
// (or unreachable — the protocol cannot tell a crash from a partition,
// §4.3.5).
var ErrPeerDown = errors.New("pairedmsg: peer presumed crashed")

// ErrClosed reports use of a closed Conn.
var ErrClosed = errors.New("pairedmsg: connection closed")

var errDupCallNum = errors.New("pairedmsg: duplicate call number in flight")

// Message is one fully reassembled incoming message. Data may alias a
// pooled transport buffer: a consumer that has copied out (or finished
// with) the bytes should call Release to recycle the backing storage.
// Skipping Release is always safe — the buffer just falls to the
// garbage collector — but Data must not be used after Release.
type Message struct {
	From    transport.Addr
	Type    MsgType
	CallNum uint32
	Data    []byte
	buf     *transport.Buf
}

// Release returns the message's pooled backing (if any) for reuse.
// Call it at most once, after the last use of Data.
func (m *Message) Release() {
	if m.buf != nil {
		m.buf.Release()
		m.buf = nil
	}
}

// Stats counts protocol activity, used by the ablation benchmarks.
type Stats struct {
	SegmentsSent      int64
	Retransmits       int64
	AcksSent          int64
	ProbesSent        int64
	DupSegments       int64
	MessagesDelivered int64
	// DeliveryDrops counts reassembled messages that could not be
	// handed up because the incoming queue was full. Each drop
	// withholds the exchange's final acknowledgment, so the sender
	// retransmits and the message is redelivered later (or the sender
	// gives up and declares the peer down) — a drop is backpressure,
	// not message loss.
	DeliveryDrops int64
	// Wire-economy counters (DESIGN.md "Wire economy"). An ack is
	// piggybacked when it shares a coalesced datagram with at least
	// one data or probe segment; a bundle is any datagram carrying
	// two or more segments, and BundledFrames counts the segments
	// those bundles carried.
	AcksPiggybacked int64
	BundlesSent     int64
	BundledFrames   int64
}

// sessKey identifies one transfer within a peer session. The peer
// itself is implicit in the session, so the key is just direction-free
// exchange identity: message type plus call number.
type sessKey struct {
	typ     MsgType
	callNum uint32
}

// session holds all protocol state shared with one peer, behind its
// own lock: transfer tables, liveness watches, the unicast call-number
// counter, and the RTT estimator. Sessions are created on first
// contact and retained for the life of the Conn (call numbers and RTT
// estimates must survive quiet periods), reached via Conn.peers.
type session struct {
	peer transport.Addr

	mu      sync.Mutex
	out     map[sessKey]*outTransfer
	in      map[sessKey]*inTransfer
	watches map[sessKey]*Watch
	// completed records delivered inbound exchanges for replay
	// suppression (§4.2.4) after their inTransfer has been recycled:
	// the value holds everything a replayed duplicate needs answered —
	// when the exchange finished (for expiry) and its segment count
	// (for the cumulative ack).
	completed map[sessKey]doneRec
	nextCall  uint32
	rtt       rttEstimator
	nextSweep time.Time // next completed-record expiry scan

	// srttMicros mirrors rtt.srtt (microseconds) so the delayed-ack
	// bound can be derived without taking mu on the receive path.
	srttMicros atomic.Int64

	// Wire-economy send state (DESIGN.md "Wire economy"), behind its
	// own lock so enqueueing never contends with protocol bookkeeping:
	// the per-peer small-send queue, the pending cumulative acks, the
	// single-flusher flag, and the delayed-ack / coalesce timers. The
	// two locks never nest — sendMu is only taken with mu released.
	sendMu    sync.Mutex
	sendQ     []outFrame
	sendSpare []outFrame // drained queue, recycled to avoid reallocation
	pend      map[sessKey]pendAck
	flushing  bool // a flusher is draining sendQ+pend
	ackTimer  *time.Timer
	ackArmed  bool
	paceTimer *time.Timer
	paceArmed bool
}

// outFrame is one queued outbound segment: either a prepared data
// segment (seg != nil), possibly needing the please-ack bit stamped
// onto the transmitted copy, or a header-only probe.
type outFrame struct {
	seg   []byte       // prepared data segment; nil for a probe frame
	h     segHeader    // probe header when seg == nil
	t     *outTransfer // seg's owner, for wire-reference accounting; nil for acks/probes
	pa    bool         // stamp please-ack onto the transmitted copy
	probe bool         // trace as msg.probe at transmission
}

// pendAck is one pending cumulative acknowledgment, merged by maximum
// ack number: ackable() only advances, so the latest state subsumes
// every earlier one for the same exchange.
type pendAck struct {
	ackNum int
	total  int
}

// doneRec is the replay-suppression tombstone of a delivered inbound
// exchange: everything a late duplicate segment needs answered after
// the full inTransfer has been recycled.
type doneRec struct {
	at    time.Time
	total uint8
}

type outTransfer struct {
	peer     transport.Addr
	typ      MsgType
	callNum  uint32
	segs     [][]byte
	segsArr  [1][]byte // in-place backing of segs for single-segment sends
	acked    int       // highest consecutive segment acknowledged
	attempts int       // retransmission passes since last progress
	nextSend time.Time
	done     chan struct{}
	err      error
	pace     bool // session had other transfers in flight at registration

	// Pooled single-segment wire buffer. The buffer can be recycled
	// only when no retransmission can enqueue it again (ended: the
	// transfer left its session's out table) AND no already-queued
	// frame still references it (wireRefs: incremented per enqueued
	// frame, decremented after the flusher hands it to the transport).
	// Both conditions flip on different goroutines, so whichever
	// observer sees the other's condition met claims the recycle via
	// the recycled flag. A buffer never recycled (e.g. frames dropped
	// by Close) is garbage-collected — safe, just unpooled.
	backing  *[]byte
	wireRefs atomic.Int32
	ended    atomic.Bool
	recycled atomic.Bool

	// Adaptive-mode state (§4.2.4 tradeoff).
	firstSent time.Time     // when the initial transmission left
	deadline  time.Time     // no-progress crash deadline
	rto       time.Duration // current backoff interval
	retx      bool          // retransmitted at least once (Karn's rule)
	lastRetx  time.Time     // clock reading of the last retransmit pass
}

// segBufs pools single-segment wire buffers: header plus payload of a
// message that fits one datagram, the overwhelmingly common case on
// the call hot path.
var segBufs = sync.Pool{New: func() any {
	b := make([]byte, 0, transport.MaxDatagram)
	return &b
}}

// fill builds the transfer's segment vector for msg, using the
// in-place single-segment fast path (with pooled backing) when it fits
// one datagram. It leaves one wire reference held — the
// pre-transmission hold, released by the initial-transmission enqueue
// (or the error path) via wireDone — so an early completion racing the
// initial Transmit can never recycle the backing out from under it.
func (t *outTransfer) fill(typ MsgType, callNum uint32, msg []byte) error {
	t.wireRefs.Store(1)
	if len(msg) <= maxSegPayload {
		bp := segBufs.Get().(*[]byte)
		backing := (*bp)[:headerLen+len(msg)]
		segHeader{typ: typ, totalSegs: 1, segNum: 1, callNum: callNum}.put(backing)
		copy(backing[headerLen:], msg)
		*bp = backing
		t.backing = bp
		t.segsArr[0] = backing
		t.segs = t.segsArr[:1]
		return nil
	}
	segs, err := segmentMessage(typ, callNum, msg)
	if err != nil {
		return err
	}
	t.segs = segs
	return nil
}

// endWire marks the transfer as gone from its session's out table —
// no future retransmission pass can reference its segments — and
// recycles the pooled backing if no queued frame still does. Safe to
// call more than once.
func (t *outTransfer) endWire() {
	t.ended.Store(true)
	if t.backing != nil && t.wireRefs.Load() == 0 {
		t.recycleBacking()
	}
}

// wireDone drops one queued-frame reference after the transport has
// consumed the frame.
func (t *outTransfer) wireDone() {
	if t.wireRefs.Add(-1) == 0 && t.ended.Load() && t.backing != nil {
		t.recycleBacking()
	}
}

func (t *outTransfer) recycleBacking() {
	if t.recycled.CompareAndSwap(false, true) {
		segBufs.Put(t.backing)
	}
}

// stampCallNum rewrites the call number in every prepared segment
// header. BeginCall builds segments before the number is known so the
// payload copy happens outside the session lock.
func (t *outTransfer) stampCallNum(callNum uint32) {
	t.callNum = callNum
	for _, s := range t.segs {
		binary.BigEndian.PutUint32(s[callNumOff:], callNum)
	}
}

// CallNum returns the call number the transfer was registered under;
// for transfers begun with BeginCall this is where the allocated
// number is read back.
func (t *outTransfer) CallNum() uint32 { return t.callNum }

// rttEstimator keeps the per-peer smoothed round-trip time and mean
// deviation (Jacobson/Karels), from which the retransmission timeout
// is derived as srtt + 4*rttvar.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	valid  bool
}

func (e *rttEstimator) sample(rtt time.Duration) {
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
		return
	}
	delta := rtt - e.srtt
	if delta < 0 {
		delta = -delta
	}
	e.rttvar = (3*e.rttvar + delta) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

func (e *rttEstimator) rto() time.Duration { return e.srtt + 4*e.rttvar }

type inTransfer struct {
	total     int
	segs      [][]byte  // segs[1..total]; nil marks a missing segment
	segArr    [4][]byte // in-place backing of segs for small messages
	have      int
	ackNum    int // highest consecutive segment received
	delivered bool

	// bufs tracks the pooled transport buffer (if any) each stored
	// segment payload aliases, parallel to segs; the reference is
	// retained at store and released when the payload dies — at
	// multi-segment assembly (the copy), or handed on inside the
	// delivered Message for single-segment messages.
	bufs    []*transport.Buf
	bufArr  [4]*transport.Buf
	justBuf *transport.Buf // single-segment: the buffer riding in assembled

	// Backpressure state: a fully reassembled message that the
	// incoming queue refused is parked in assembled and re-offered on
	// the next (retransmitted) segment or probe for this exchange.
	// announced records that msg.delivered was already traced, so a
	// redelivery attempt never emits a second delivery event.
	assembled []byte
	announced bool
}

// inPool recycles inTransfer structs: an exchange's record lives only
// until delivery now (a doneRec tombstone takes over replay
// suppression), so the struct is reusable per message instead of
// retained for the CompletedTTL window.
var inPool = sync.Pool{New: func() any { return new(inTransfer) }}

// newInTransfer takes a pooled record and sizes its segment vectors
// for a message of total segments (indexed 1..total).
func newInTransfer(total int) *inTransfer {
	in := inPool.Get().(*inTransfer)
	in.total = total
	if n := total + 1; n <= len(in.segArr) {
		in.segs = in.segArr[:n]
		in.bufs = in.bufArr[:n]
	} else {
		in.segs = make([][]byte, n)
		in.bufs = make([]*transport.Buf, n)
	}
	return in
}

// recycleInTransfer scrubs and pools a delivered record. Caller has
// already transferred or released every buffer reference; remaining
// entries here are defensive (they only arise if a future edit leaks
// one, in which case the release below keeps the pool honest).
func recycleInTransfer(in *inTransfer) {
	for i := range in.segs {
		in.segs[i] = nil
		if b := in.bufs[i]; b != nil {
			b.Release()
			in.bufs[i] = nil
		}
	}
	*in = inTransfer{}
	inPool.Put(in)
}

// ackable returns the acknowledgment number to advertise for this
// transfer: normally the highest consecutive segment received, but
// capped at total-1 while a reassembled message is still waiting for
// queue space, so the sender keeps retransmitting (and so redelivering)
// instead of considering the exchange complete.
func (in *inTransfer) ackable() int {
	if !in.delivered && in.have == in.total {
		return in.total - 1
	}
	return in.ackNum
}

// Watch monitors a peer for liveness while a return message is
// awaited (§4.2.3). Down is signalled if probes go unanswered.
type Watch struct {
	conn      *Conn
	sess      *session
	k         sessKey
	missed    int
	nextProbe time.Time
	down      chan struct{}
	stopped   bool
}

// watchPool recycles Watch structs — every replicated call starts one
// per member. The down channel is reused too: it is closed only when a
// crash is detected, and a crash also stops the watch in the same
// critical section, so a watch that reaches Stop un-stopped is
// guaranteed to carry an unclosed (hence reusable) channel.
var watchPool = sync.Pool{New: func() any {
	return &Watch{down: make(chan struct{})}
}}

// rtoForLocked returns the retransmission interval for a fresh
// transfer to the session's peer. Caller holds s.mu.
func (c *Conn) rtoForLocked(s *session) time.Duration {
	if !c.opts.Adaptive {
		return c.opts.RetransmitInterval
	}
	if s.rtt.valid {
		rto := s.rtt.rto()
		if rto < c.opts.MinRTO {
			rto = c.opts.MinRTO
		}
		if rto > c.opts.MaxRTO {
			rto = c.opts.MaxRTO
		}
		return rto
	}
	return c.opts.RetransmitInterval
}

// initTransferLocked stamps the adaptive-mode schedule onto a transfer
// about to make its initial transmission. Caller holds s.mu.
func (c *Conn) initTransferLocked(s *session, t *outTransfer, now time.Time) {
	t.firstSent = now
	t.deadline = now.Add(c.opts.MaxRetryTime)
	t.rto = c.rtoForLocked(s)
	t.nextSend = now.Add(t.rto)
}

// Down returns a channel closed when the peer is presumed crashed.
func (w *Watch) Down() <-chan struct{} { return w.down }

// Stop cancels the watch. The watch must not be used after Stop.
func (w *Watch) Stop() {
	s := w.sess
	s.mu.Lock()
	live := !w.stopped
	if live {
		w.stopped = true
		delete(s.watches, w.k)
	}
	s.mu.Unlock()
	if live {
		// Only a crash closes down, and it marks the watch stopped in
		// the same critical section — so an un-stopped watch's channel
		// was never closed and both struct and channel are reusable.
		w.conn, w.sess = nil, nil
		w.missed = 0
		w.k = sessKey{}
		watchPool.Put(w)
	}
}

func (w *Watch) stopLocked() {
	if !w.stopped {
		w.stopped = true
		delete(w.sess.watches, w.k)
	}
}

// Conn runs the paired message protocol over one transport endpoint.
type Conn struct {
	ep   transport.Endpoint
	opts Options
	tr   *trace.Local // nil when tracing is disabled

	// peers maps transport.Addr to *session. Lookups on the steady
	// path are lock-free; a session is created once per peer.
	peers sync.Map

	// multiMu serializes multicast call-number allocation with the
	// registration and trace emission of the transfers it numbers, so
	// multicast msg.send events appear in call-number order.
	multiMu   sync.Mutex
	nextMulti uint32 // guarded by multiMu

	callBase uint32
	closed   atomic.Bool
	stats    counters

	incoming chan Message
	stop     chan struct{}
	wg       sync.WaitGroup
}

// counters is the internal all-atomic form of Stats, updated without
// any lock.
type counters struct {
	segmentsSent      atomic.Int64
	retransmits       atomic.Int64
	acksSent          atomic.Int64
	probesSent        atomic.Int64
	dupSegments       atomic.Int64
	messagesDelivered atomic.Int64
	deliveryDrops     atomic.Int64
	acksPiggybacked   atomic.Int64
	bundlesSent       atomic.Int64
	bundledFrames     atomic.Int64
}

// txScratch is the per-flush staging state: the datagram vector handed
// to the transport and the pooled bundle buffers to return afterwards.
// Pooling it keeps the steady-state flush path allocation-free.
type txScratch struct {
	dgrams []transport.Datagram
	bufs   []*[]byte
}

var txScratchPool = sync.Pool{New: func() any { return new(txScratch) }}

// transmitFrames packs acknowledgments and queued frames bound for one
// peer into as few datagrams as possible and hands them to the
// transport — in one batched operation when the endpoint supports it.
// Acknowledgments go first, so a receiver unpacking a bundle settles
// completed exchanges before seeing new data (a client's bundled
// [ack(return n), call n+1] keeps strictly serial workloads at one
// transfer in flight). Full-size segments can never share a datagram
// and are sent raw; a bundle that would carry a single frame is
// unwrapped and sent as a plain segment, byte-identical to the
// uncoalesced protocol. Retransmitted segments get the please-ack bit
// stamped onto the transmitted copy, never onto the stored original —
// other readers may hold it outside any lock.
func (c *Conn) transmitFrames(peer transport.Addr, acks []segHeader, frames []outFrame) {
	tx := txScratchPool.Get().(*txScratch)
	var (
		cur     *[]byte // bundle under construction
		curN    int     // frames packed into cur
		curAcks int     // ack frames among them
	)
	closeCur := func() {
		if cur == nil {
			return
		}
		buf := *cur
		if curN == 1 {
			// A lone frame needs no wrapper.
			tx.dgrams = append(tx.dgrams, transport.Datagram{To: peer,
				Data: buf[bundleHdrLen+bundleFrameHdrLen:]})
		} else {
			tx.dgrams = append(tx.dgrams, transport.Datagram{To: peer, Data: buf})
			c.stats.bundlesSent.Add(1)
			c.stats.bundledFrames.Add(int64(curN))
			if curAcks > 0 && curAcks < curN {
				c.stats.acksPiggybacked.Add(int64(curAcks))
			}
			if c.tr.EnabledFor(trace.KindBundleSend) {
				c.tr.Emit(trace.Event{Kind: trace.KindBundleSend, Peer: peer, N: curN})
			}
		}
		tx.bufs = append(tx.bufs, cur)
		cur, curN, curAcks = nil, 0, 0
	}
	pack := func(seg []byte, pa bool, isAck bool) {
		need := bundleFrameHdrLen + len(seg)
		if cur != nil && len(*cur)+need > transport.MaxDatagram {
			closeCur()
		}
		if cur == nil {
			bp := bundleBufs.Get().(*[]byte)
			*bp = append((*bp)[:0], bundleMagic, 0)
			cur = bp
		}
		b := *cur
		mark := len(b) + bundleFrameHdrLen
		b = appendBundleFrame(b, seg)
		if pa {
			b[mark+1] |= ctlPleaseAck
		}
		*cur = b
		curN++
		if isAck {
			curAcks++
		}
	}

	var hb [headerLen]byte
	for _, h := range acks {
		c.stats.acksSent.Add(1)
		if c.tr.EnabledFor(trace.KindAckSend) {
			c.tr.Emit(trace.Event{Kind: trace.KindAckSend, Peer: peer,
				MsgType: uint8(h.typ), CallNum: h.callNum,
				N: int(h.segNum), Total: int(h.totalSegs)})
		}
		h.put(hb[:])
		pack(hb[:], false, true)
	}
	for _, f := range frames {
		if f.seg == nil { // probe
			if c.tr.EnabledFor(trace.KindProbeSend) {
				c.tr.Emit(trace.Event{Kind: trace.KindProbeSend, Peer: peer,
					MsgType: uint8(f.h.typ), CallNum: f.h.callNum})
			}
			f.h.put(hb[:])
			pack(hb[:], false, false)
			continue
		}
		if !bundleFits(len(f.seg)) {
			closeCur() // preserve frame order across the raw send
			if f.pa {
				bp := bundleBufs.Get().(*[]byte)
				b := append((*bp)[:0], f.seg...)
				b[1] |= ctlPleaseAck
				*bp = b
				tx.dgrams = append(tx.dgrams, transport.Datagram{To: peer, Data: b})
				tx.bufs = append(tx.bufs, bp)
			} else {
				tx.dgrams = append(tx.dgrams, transport.Datagram{To: peer, Data: f.seg})
			}
			continue
		}
		pack(f.seg, f.pa, false)
	}
	closeCur()

	switch {
	case len(tx.dgrams) == 0:
	case len(tx.dgrams) == 1:
		c.ep.Send(peer, tx.dgrams[0].Data)
	default:
		if bs, ok := c.ep.(transport.BatchSender); ok {
			bs.SendBatch(tx.dgrams)
		} else {
			for _, d := range tx.dgrams {
				c.ep.Send(d.To, d.Data)
			}
		}
	}

	for _, bp := range tx.bufs {
		bundleBufs.Put(bp)
	}
	for i := range tx.dgrams {
		tx.dgrams[i] = transport.Datagram{} // drop payload references
	}
	tx.dgrams = tx.dgrams[:0]
	tx.bufs = tx.bufs[:0]
	txScratchPool.Put(tx)
}

// connSeq and connSalt seed the default call number base so
// successive incarnations on one address cannot collide (see
// Options.CallBase) — the salt covers restarts of the whole OS
// process, the sequence covers restarts within it.
var (
	connSeq  atomic.Uint32
	connSalt = uint32(time.Now().UnixNano())
)

// New starts the protocol over ep. The caller must eventually Close
// the Conn, which also closes ep.
func New(ep transport.Endpoint, opts Options) *Conn {
	base := opts.CallBase
	if base == 0 {
		// Scatter successive incarnations across the 30-bit unicast
		// call number space (the top bit marks multicast numbers).
		base = ((connSeq.Add(1) * 0x9E3779B1) ^ connSalt) & 0x3FFF_FFFF
	}
	c := &Conn{
		ep:       ep,
		opts:     opts.withDefaults(),
		callBase: base,
		stop:     make(chan struct{}),
	}
	c.incoming = make(chan Message, c.opts.IncomingBuffer)
	c.tr = trace.NewLocal(c.opts.Trace, ep.Addr(), trace.NextIncarnation())
	if d, ok := ep.(transport.Dispatcher); ok {
		// Ring hand-off: the endpoint invokes the protocol directly from
		// its drain machinery, skipping the Recv channel and its
		// per-datagram goroutine wake.
		d.SetHandler(c.handlePacket)
		c.wg.Add(1)
		go c.timerLoop()
	} else {
		c.wg.Add(2)
		go c.recvLoop()
		go c.timerLoop()
	}
	return c
}

// session returns the per-peer state shard, creating it on first
// contact with peer.
func (c *Conn) session(peer transport.Addr) *session {
	if v, ok := c.peers.Load(peer); ok {
		return v.(*session)
	}
	v, _ := c.peers.LoadOrStore(peer, &session{
		peer:      peer,
		out:       make(map[sessKey]*outTransfer),
		in:        make(map[sessKey]*inTransfer),
		watches:   make(map[sessKey]*Watch),
		completed: make(map[sessKey]doneRec),
		pend:      make(map[sessKey]pendAck),
		nextCall:  c.callBase,
	})
	return v.(*session)
}

// Addr returns the local transport address.
func (c *Conn) Addr() transport.Addr { return c.ep.Addr() }

// Tracer returns the connection's trace emitter (nil when tracing is
// disabled), stamped with this connection's address and incarnation.
// Higher layers share it so one process's events carry one identity.
func (c *Conn) Tracer() *trace.Local { return c.tr }

// Incoming returns the stream of reassembled messages. The channel is
// closed by Close.
func (c *Conn) Incoming() <-chan Message { return c.incoming }

// Stats returns a snapshot of the protocol counters.
func (c *Conn) Stats() Stats {
	return Stats{
		SegmentsSent:      c.stats.segmentsSent.Load(),
		Retransmits:       c.stats.retransmits.Load(),
		AcksSent:          c.stats.acksSent.Load(),
		ProbesSent:        c.stats.probesSent.Load(),
		DupSegments:       c.stats.dupSegments.Load(),
		MessagesDelivered: c.stats.messagesDelivered.Load(),
		DeliveryDrops:     c.stats.deliveryDrops.Load(),
		AcksPiggybacked:   c.stats.acksPiggybacked.Load(),
		BundlesSent:       c.stats.bundlesSent.Load(),
		BundledFrames:     c.stats.bundledFrames.Load(),
	}
}

// RTT returns the smoothed round-trip estimate for peer, and whether
// the estimator has accepted any sample yet. Estimation is per-peer
// session state, so one peer's estimate never bleeds into another's.
func (c *Conn) RTT(peer transport.Addr) (time.Duration, bool) {
	v, ok := c.peers.Load(peer)
	if !ok {
		return 0, false
	}
	s := v.(*session)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rtt.srtt, s.rtt.valid
}

// NextCallNum allocates a call number unique among exchanges between
// this process and peer (§4.2: call numbers identify each pair of
// messages among all those exchanged by a given pair of processes).
func (c *Conn) NextCallNum(peer transport.Addr) uint32 {
	s := c.session(peer)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextCall++
	return s.nextCall
}

// Close shuts the protocol down, failing pending sends with ErrClosed.
func (c *Conn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.peers.Range(func(_, v any) bool {
		s := v.(*session)
		s.mu.Lock()
		for k, t := range s.out {
			t.err = ErrClosed
			close(t.done)
			delete(s.out, k)
			t.endWire()
		}
		for _, w := range s.watches {
			w.stopped = true
		}
		s.watches = map[sessKey]*Watch{}
		s.mu.Unlock()
		// Stop the delayed-ack and coalesce timers and drop anything
		// still queued: the peer will learn nothing more from us, and
		// a timer firing after teardown must find nothing to do. A
		// callback already past Stop re-checks c.closed and bails.
		s.sendMu.Lock()
		if s.ackTimer != nil {
			s.ackTimer.Stop()
		}
		if s.paceTimer != nil {
			s.paceTimer.Stop()
		}
		s.ackArmed, s.paceArmed = false, false
		s.sendQ, s.sendSpare = nil, nil
		for k := range s.pend {
			delete(s.pend, k)
		}
		s.sendMu.Unlock()
		return true
	})
	close(c.stop)

	err := c.ep.Close()
	c.wg.Wait()
	close(c.incoming)
	return err
}

// register installs a fully built transfer into its session, starting
// its retransmission schedule, and reports how many transfers
// (including this one) the session then had in flight — the signal the
// coalescing pacer keys on. The post-unlock closed recheck covers the
// window where Close's teardown sweep ran before this session was
// published: either the sweep saw the session (and failed the
// transfer) or the recheck fires — no transfer outlives Close.
func (c *Conn) register(s *session, t *outTransfer) (int, error) {
	k := sessKey{typ: t.typ, callNum: t.callNum}
	s.mu.Lock()
	if c.closed.Load() {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if _, dup := s.out[k]; dup {
		s.mu.Unlock()
		return 0, errDupCallNum
	}
	s.out[k] = t
	inFlight := len(s.out)
	c.initTransferLocked(s, t, time.Now())
	s.mu.Unlock()
	if c.closed.Load() {
		s.mu.Lock()
		c.completeOutLocked(s, t, ErrClosed)
		s.mu.Unlock()
		return 0, ErrClosed
	}
	return inFlight, nil
}

// Send reliably transmits one message to peer, blocking until every
// segment is acknowledged (explicitly or implicitly), the context is
// cancelled, or the peer is presumed crashed.
func (c *Conn) Send(ctx context.Context, to transport.Addr, typ MsgType, callNum uint32, msg []byte) error {
	t, err := c.StartSend(to, typ, callNum, msg)
	if err != nil {
		return err
	}
	return c.Await(ctx, t)
}

// Await blocks until a transfer completes or the context is cancelled;
// cancellation abandons the transfer.
func (c *Conn) Await(ctx context.Context, t *outTransfer) error {
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		s := c.session(t.peer)
		s.mu.Lock()
		k := sessKey{typ: t.typ, callNum: t.callNum}
		if cur, ok := s.out[k]; ok && cur == t {
			delete(s.out, k)
			t.endWire()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// ErrNoMulticast reports that the underlying endpoint cannot
// multicast.
var ErrNoMulticast = errors.New("pairedmsg: endpoint does not support multicast")

// Transfer is the caller-visible handle of an asynchronous reliable
// send: Done is closed when every segment is acknowledged or the
// transfer fails, after which Err reports the outcome.
type Transfer interface {
	Done() <-chan struct{}
	Err() error
}

// NextMulticastCallNum allocates a call number for a multicast
// exchange. Multicast numbers live in the upper half of the call
// number space so they can never collide with the per-peer unicast
// counters; within one pair of processes every exchange still bears a
// unique number, as §4.2 requires.
func (c *Conn) NextMulticastCallNum() uint32 {
	c.multiMu.Lock()
	defer c.multiMu.Unlock()
	return c.nextMulticastLocked()
}

func (c *Conn) nextMulticastLocked() uint32 {
	if c.nextMulti == 0 {
		c.nextMulti = c.callBase
	}
	c.nextMulti++
	return 0x8000_0000 | (c.nextMulti & 0x7FFF_FFFF)
}

// BeginCall allocates the next unicast call number for peer and
// registers a call-message transfer under it, without transmitting.
// Allocation, registration, and the msg.send trace event happen in one
// session critical section, so the per-peer trace order always matches
// call-number order no matter how many callers race — the property the
// monotone-call-numbers conformance check verifies. The caller reads
// the number with CallNum, installs any reply routing keyed by it, and
// then calls Transmit; nothing is on the wire before that, so a reply
// can never arrive before its routing exists.
func (c *Conn) BeginCall(to transport.Addr, msg []byte) (*outTransfer, error) {
	t := &outTransfer{peer: to, typ: Call, done: make(chan struct{})}
	if err := t.fill(Call, 0, msg); err != nil {
		return nil, err
	}
	s := c.session(to)
	s.mu.Lock()
	if c.closed.Load() {
		s.mu.Unlock()
		t.endWire()
		t.wireDone()
		return nil, ErrClosed
	}
	s.nextCall++
	for {
		if _, dup := s.out[sessKey{typ: Call, callNum: s.nextCall}]; !dup {
			break
		}
		s.nextCall++ // wrapped onto a number still in flight: skip it
	}
	t.stampCallNum(s.nextCall)
	s.out[sessKey{typ: Call, callNum: t.callNum}] = t
	t.pace = len(s.out) >= paceInFlightMin
	c.initTransferLocked(s, t, time.Now())
	if c.tr.EnabledFor(trace.KindMsgSend) {
		c.tr.Emit(trace.Event{Kind: trace.KindMsgSend, Peer: to,
			MsgType: uint8(Call), CallNum: t.callNum, N: len(t.segs)})
	}
	s.mu.Unlock()
	if c.closed.Load() { // see register for why this recheck is needed
		s.mu.Lock()
		c.completeOutLocked(s, t, ErrClosed)
		s.mu.Unlock()
		t.wireDone() // Transmit will never run to release the hold
		return nil, ErrClosed
	}
	c.stats.segmentsSent.Add(int64(len(t.segs)))
	return t, nil
}

// Transmit performs the initial transmission of a transfer begun with
// BeginCall, all segments with no control bits set (§4.2.2). The
// segments go through the session's coalescing queue, carrying any
// pending acknowledgment to the same peer with them.
func (c *Conn) Transmit(t *outTransfer) {
	s := c.session(t.peer)
	s.sendMu.Lock()
	for _, seg := range t.segs {
		t.wireRefs.Add(1)
		s.sendQ = append(s.sendQ, outFrame{seg: seg, t: t})
	}
	c.flushOrSchedule(s, t.pace)
	t.wireDone() // release the pre-transmission hold taken by fill
}

// BeginCallMulticast is the multicast analog of BeginCall: it
// allocates one multicast call number and registers a call transfer to
// every member of group under it, without transmitting. The returned
// transfers parallel group. Retransmission and acknowledgment remain
// per-recipient, because delivery reliability varies from recipient to
// recipient (§2.2). The caller installs reply routing and then calls
// TransmitMulticast.
func (c *Conn) BeginCallMulticast(group []transport.Addr, msg []byte) ([]Transfer, uint32, error) {
	if _, ok := c.ep.(transport.Multicaster); !ok {
		return nil, 0, ErrNoMulticast
	}
	segs, err := segmentMessage(Call, 0, msg)
	if err != nil {
		return nil, 0, err
	}

	c.multiMu.Lock()
	defer c.multiMu.Unlock()
	if c.closed.Load() {
		return nil, 0, ErrClosed
	}
	callNum := c.nextMulticastLocked()
	for _, s := range segs {
		binary.BigEndian.PutUint32(s[callNumOff:], callNum)
	}
	transfers := make([]Transfer, len(group))
	registered := make([]*outTransfer, 0, len(group))
	for i, to := range group {
		t := &outTransfer{peer: to, typ: Call, callNum: callNum, segs: segs,
			done: make(chan struct{})}
		if _, err := c.register(c.session(to), t); err != nil {
			for _, r := range registered {
				rs := c.session(r.peer)
				rs.mu.Lock()
				c.completeOutLocked(rs, r, ErrClosed)
				rs.mu.Unlock()
			}
			return nil, 0, err
		}
		if c.tr.EnabledFor(trace.KindMsgSend) {
			c.tr.Emit(trace.Event{Kind: trace.KindMsgSend, Peer: to,
				MsgType: uint8(Call), CallNum: callNum, N: len(segs)})
		}
		transfers[i] = t
		registered = append(registered, t)
	}
	c.stats.segmentsSent.Add(int64(len(segs))) // one multicast op per segment
	return transfers, callNum, nil
}

// TransmitMulticast performs the initial transmission of transfers
// begun with BeginCallMulticast: one multicast operation per segment
// reaches the whole group (§4.3.3 — m+n messages instead of m·n).
func (c *Conn) TransmitMulticast(group []transport.Addr, transfers []Transfer) {
	if len(transfers) == 0 {
		return
	}
	mc := c.ep.(transport.Multicaster)
	for _, s := range transfers[0].(*outTransfer).segs {
		mc.Multicast(group, s)
	}
}

// StartSendMulticast begins one reliable transfer to every member of
// group with a caller-supplied call number, transmitting the initial
// copy of each segment with a single multicast operation. It remains
// for callers that allocate numbers via NextMulticastCallNum;
// BeginCallMulticast is the race-free allocation path.
func (c *Conn) StartSendMulticast(group []transport.Addr, typ MsgType, callNum uint32, msg []byte) ([]Transfer, error) {
	mc, ok := c.ep.(transport.Multicaster)
	if !ok {
		return nil, ErrNoMulticast
	}
	segs, err := segmentMessage(typ, callNum, msg)
	if err != nil {
		return nil, err
	}
	transfers := make([]Transfer, len(group))
	registered := make([]*outTransfer, 0, len(group))
	for i, to := range group {
		t := &outTransfer{peer: to, typ: typ, callNum: callNum, segs: segs,
			done: make(chan struct{})}
		if _, err := c.register(c.session(to), t); err != nil {
			for _, r := range registered {
				rs := c.session(r.peer)
				rs.mu.Lock()
				c.completeOutLocked(rs, r, ErrClosed)
				rs.mu.Unlock()
			}
			return nil, err
		}
		transfers[i] = t
		registered = append(registered, t)
	}
	c.stats.segmentsSent.Add(int64(len(segs)))

	if c.tr.EnabledFor(trace.KindMsgSend) {
		for _, to := range group {
			c.tr.Emit(trace.Event{Kind: trace.KindMsgSend, Peer: to,
				MsgType: uint8(typ), CallNum: callNum, N: len(segs)})
		}
	}
	for _, s := range segs {
		mc.Multicast(group, s)
	}
	return transfers, nil
}

// StartSend begins a reliable transfer without blocking; servers use
// it to send return messages while continuing to serve (§4.3.2).
func (c *Conn) StartSend(to transport.Addr, typ MsgType, callNum uint32, msg []byte) (*outTransfer, error) {
	t := &outTransfer{peer: to, typ: typ, callNum: callNum, done: make(chan struct{})}
	if err := t.fill(typ, callNum, msg); err != nil {
		return nil, err
	}
	s := c.session(to)
	inFlight, err := c.register(s, t)
	if err != nil {
		t.endWire()
		t.wireDone()
		return nil, err
	}
	c.stats.segmentsSent.Add(int64(len(t.segs)))

	if c.tr.EnabledFor(trace.KindMsgSend) {
		c.tr.Emit(trace.Event{Kind: trace.KindMsgSend, Peer: to,
			MsgType: uint8(typ), CallNum: callNum, N: len(t.segs)})
	}
	// Initial transmission of all segments with no control bits set
	// (§4.2.2), through the coalescing queue so a pending ack to the
	// same peer rides along.
	s.sendMu.Lock()
	for _, seg := range t.segs {
		t.wireRefs.Add(1)
		s.sendQ = append(s.sendQ, outFrame{seg: seg, t: t})
	}
	c.flushOrSchedule(s, inFlight >= paceInFlightMin)
	t.wireDone() // release the pre-transmission hold taken by fill
	return t, nil
}

// Done exposes the completion channel for use with select.
func (t *outTransfer) Done() <-chan struct{} { return t.done }

// Err reports the transfer outcome; valid only after Done is closed.
func (t *outTransfer) Err() error { return t.err }

// WatchPeer starts crash-detection probing of the exchange identified
// by (to, typ=Call, callNum): the client calls it after its call
// message is fully acknowledged and while the return is pending
// (§4.2.3).
func (c *Conn) WatchPeer(to transport.Addr, callNum uint32) *Watch {
	s := c.session(to)
	w := watchPool.Get().(*Watch)
	w.conn = c
	w.sess = s
	w.k = sessKey{typ: Call, callNum: callNum}
	w.missed = 0
	w.stopped = false
	w.nextProbe = time.Now().Add(c.opts.ProbeInterval)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed.Load() {
		w.stopped = true
		return w
	}
	s.watches[w.k] = w
	return w
}

func (c *Conn) recvLoop() {
	defer c.wg.Done()
	for pkt := range c.ep.Recv() {
		c.handlePacket(pkt)
	}
}

// handlePacket processes one incoming datagram — the receive entry
// point for both the Recv-channel loop and a Dispatcher endpoint's
// drain goroutines — and releases the packet's pooled buffer (if any)
// when done. Segments stored for reassembly retain their own reference
// first, so the release here only ends the packet-wide hold.
func (c *Conn) handlePacket(pkt transport.Packet) {
	if len(pkt.Data) > 0 && pkt.Data[0] == bundleMagic {
		// A coalesced datagram: unpack and handle each segment in
		// order, so an ack packed ahead of a data segment settles
		// the older exchange before the new one is seen. Frames
		// alias pkt.Data, which the receiver owns (transport.Packet).
		from, buf := pkt.From, pkt.Buf
		decodeBundle(pkt.Data, func(frame []byte) {
			c.handleSegment(from, frame, buf)
		})
	} else {
		c.handleSegment(pkt.From, pkt.Data, pkt.Buf)
	}
	if pkt.Buf != nil {
		pkt.Buf.Release()
	}
}

// handleSegment dispatches one decoded segment — plain or unpacked
// from a bundle — to the ack, probe, or data path. buf is the pooled
// transport buffer the segment aliases, nil for fresh-buffer delivery.
func (c *Conn) handleSegment(from transport.Addr, data []byte, buf *transport.Buf) {
	h, payload, err := decodeSegment(data)
	if err != nil {
		return // garbled: treated as lost (§2.2)
	}
	switch {
	case h.ack:
		c.handleAck(from, h)
	case h.totalSegs == 0:
		c.handleProbe(from, h)
	default:
		c.handleData(from, h, payload, buf)
	}
}

// handleAck processes an explicit acknowledgment: all segments with
// numbers <= the acknowledgment number have been received (§4.2.2).
func (c *Conn) handleAck(from transport.Addr, h segHeader) {
	s := c.session(from)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aliveLocked(h.callNum)
	t, ok := s.out[sessKey{typ: h.typ, callNum: h.callNum}]
	if !ok {
		return
	}
	if int(h.segNum) > t.acked {
		t.acked = int(h.segNum)
		t.attempts = 0 // progress resets the crash countdown
		t.deadline = time.Now().Add(c.opts.MaxRetryTime)
	}
	if t.acked >= len(t.segs) {
		c.completeOutLocked(s, t, nil)
	}
}

// handleProbe answers a please-ack control segment with the current
// acknowledgment state for that exchange, telling the prober both
// "alive" and "here is how much I have" (§4.2.3). A probe also
// re-offers a reassembled message the incoming queue refused earlier.
func (c *Conn) handleProbe(from transport.Addr, h segHeader) {
	if !h.pleaseAck {
		return
	}
	s := c.session(from)
	k := sessKey{typ: h.typ, callNum: h.callNum}
	s.mu.Lock()
	in := s.in[k]
	ackNum, total := 0, int(h.totalSegs)
	var dropped bool
	if in != nil {
		var deliveredNow bool
		if !in.delivered && in.have == in.total {
			deliveredNow, dropped = c.deliverLocked(in, from, h.typ, h.callNum)
		}
		ackNum, total = in.ackable(), in.total
		if deliveredNow {
			delete(s.in, k)
			s.completed[k] = doneRec{at: time.Now(), total: uint8(in.total)}
			recycleInTransfer(in)
		}
	} else if rec, ok := s.completed[k]; ok {
		// The exchange already finished; answer from the tombstone.
		ackNum, total = int(rec.total), int(rec.total)
	}
	s.mu.Unlock()
	if dropped {
		c.traceDrop(from, h.typ, h.callNum)
	}
	// The prober is waiting on this answer: flush it at once (it still
	// shares its datagram with anything already queued).
	c.queueAck(s, h.typ, h.callNum, ackNum, total, true)
}

func (c *Conn) handleData(from transport.Addr, h segHeader, payload []byte, buf *transport.Buf) {
	s := c.session(from)
	k := sessKey{typ: h.typ, callNum: h.callNum}

	s.mu.Lock()
	s.aliveLocked(h.callNum)

	// A return segment implicitly acknowledges all segments of the
	// call bearing the same call number (§4.2.2).
	if h.typ == Return {
		if t, ok := s.out[sessKey{typ: Call, callNum: h.callNum}]; ok {
			c.completeOutLocked(s, t, nil)
		}
	}

	in, ok := s.in[k]
	if !ok {
		if rec, done := s.completed[k]; done {
			// Replayed segment of a finished exchange (§4.2.4): answer
			// from the tombstone without resurrecting transfer state.
			s.mu.Unlock()
			c.stats.dupSegments.Add(1)
			if c.tr.EnabledFor(trace.KindDupSegment) {
				c.tr.Emit(trace.Event{Kind: trace.KindDupSegment, Peer: from,
					MsgType: uint8(h.typ), CallNum: h.callNum, N: int(h.segNum)})
			}
			if h.pleaseAck {
				c.queueAck(s, h.typ, h.callNum, int(rec.total), int(rec.total), true)
			}
			return
		}
		in = newInTransfer(int(h.totalSegs))
		s.in[k] = in
	}

	var (
		deliveredNow bool
		dropped      bool
		gap          bool
		dup          bool
	)
	switch {
	case int(h.segNum) < 1 || int(h.segNum) > in.total:
		s.mu.Unlock()
		return // malformed
	case in.segs[h.segNum] != nil:
		dup = true
		// A duplicate of a fully reassembled message still waiting for
		// queue space is the sender's retransmission doing its job:
		// attempt the delivery again (backpressure recovery).
		if in.have == in.total {
			deliveredNow, dropped = c.deliverLocked(in, from, h.typ, h.callNum)
		}
	default:
		// The payload is kept without copying: either it sits in a
		// fresh buffer the receiver owns outright, or it aliases a
		// pooled buffer whose reference is retained here and released
		// when the stored bytes die. It is non-nil even when empty —
		// the datagram had a header prefix — which matters because nil
		// marks "missing".
		in.segs[h.segNum] = payload
		if buf != nil {
			buf.Retain()
			in.bufs[h.segNum] = buf
		}
		in.have++
		for in.ackNum < in.total && in.segs[in.ackNum+1] != nil {
			in.ackNum++
		}
		// An out-of-order arrival reveals a loss: acknowledge at once
		// so the sender retransmits the first missing segment rather
		// than waiting out its timer (§4.2.4).
		gap = int(h.segNum) > in.ackNum+1
		if in.have == in.total {
			deliveredNow, dropped = c.deliverLocked(in, from, h.typ, h.callNum)
		}
	}
	if dup {
		c.stats.dupSegments.Add(1)
	}
	ackNum, total := in.ackable(), in.total
	if deliveredNow {
		// Delivery retires the record: a doneRec tombstone takes over
		// replay suppression and the struct goes back to the pool.
		delete(s.in, k)
		s.completed[k] = doneRec{at: time.Now(), total: uint8(in.total)}
		recycleInTransfer(in)
	}
	s.mu.Unlock()

	if dup && c.tr.EnabledFor(trace.KindDupSegment) {
		c.tr.Emit(trace.Event{Kind: trace.KindDupSegment, Peer: from,
			MsgType: uint8(h.typ), CallNum: h.callNum, N: int(h.segNum)})
	}
	if dropped {
		c.traceDrop(from, h.typ, h.callNum)
	}

	// Acknowledgment policy: answer please-ack and gaps urgently (the
	// sender is retransmitting, or about to); acknowledge a completed
	// return message cumulatively behind the delayed-ack bound, giving
	// it a chance to piggyback on the next call to the same peer
	// instead of occupying its own datagram; let a completed call
	// message be acknowledged implicitly by the forthcoming return
	// (§4.2.4's postponement), unless the sender asked. A message
	// still parked by backpressure reports ackable() = total-1, so
	// these acks never finalize it.
	urgent := h.pleaseAck || gap
	if urgent || (deliveredNow && h.typ == Return) {
		c.queueAck(s, h.typ, h.callNum, ackNum, total, urgent)
	}
}

// deliverLocked assembles a completed inbound message (once) and
// offers it to the incoming queue without blocking. On refusal the
// assembled message stays parked in the transfer for the next attempt
// and the drop is counted; the caller emits the trace event outside
// the session lock. The msg.delivered event is emitted on the first
// completion only — before anything the receiver could do in response
// — so redelivery attempts never duplicate it. Caller holds the
// session lock.
func (c *Conn) deliverLocked(in *inTransfer, from transport.Addr, typ MsgType, callNum uint32) (delivered, dropped bool) {
	if !in.announced {
		if in.total == 1 {
			// Single segment: hand the payload up as-is, moving any
			// pooled-buffer reference into the message itself.
			in.assembled = in.segs[1]
			in.justBuf = in.bufs[1]
			in.bufs[1] = nil
		} else {
			size := 0
			for i := 1; i <= in.total; i++ {
				size += len(in.segs[i])
			}
			buf := make([]byte, 0, size)
			for i := 1; i <= in.total; i++ {
				buf = append(buf, in.segs[i]...)
			}
			in.assembled = buf
		}
		for i := 1; i <= in.total; i++ {
			in.segs[i] = []byte{} // free the payload, keep "seen"
			if b := in.bufs[i]; b != nil {
				b.Release() // multi-segment: payload copied out above
				in.bufs[i] = nil
			}
		}
		in.announced = true
		if c.tr.EnabledFor(trace.KindMsgDelivered) {
			c.tr.Emit(trace.Event{Kind: trace.KindMsgDelivered, Peer: from,
				MsgType: uint8(typ), CallNum: callNum, N: in.total})
		}
	}
	msg := Message{From: from, Type: typ, CallNum: callNum,
		Data: in.assembled, buf: in.justBuf}
	select {
	case c.incoming <- msg:
		in.delivered = true
		in.assembled = nil
		in.justBuf = nil // reference rides in the delivered Message now
		c.stats.messagesDelivered.Add(1)
		return true, false
	default:
		c.stats.deliveryDrops.Add(1)
		return false, true
	}
}

func (c *Conn) traceDrop(from transport.Addr, typ MsgType, callNum uint32) {
	if c.tr.EnabledFor(trace.KindDeliveryDrop) {
		c.tr.Emit(trace.Event{Kind: trace.KindDeliveryDrop, Peer: from,
			MsgType: uint8(typ), CallNum: callNum})
	}
}

// aliveLocked resets the probe miss counters of any watch on this
// call number. Caller holds s.mu.
func (s *session) aliveLocked(callNum uint32) {
	if w, ok := s.watches[sessKey{typ: Call, callNum: callNum}]; ok {
		w.missed = 0
	}
}

// ackDelay returns how long a non-urgent ack may wait for a segment
// to piggyback on. The bound must sit well below the peer's
// retransmission timeout, or delaying would masquerade as loss: in
// adaptive mode min(MinRTO/2, srtt/4) floored at 100µs, in fixed mode
// RetransmitInterval/8 capped at 5ms. Options.AckDelay overrides.
func (c *Conn) ackDelay(s *session) time.Duration {
	if d := c.opts.AckDelay; d > 0 {
		return d
	}
	if c.opts.Adaptive {
		d := c.opts.MinRTO / 2
		if srtt := time.Duration(s.srttMicros.Load()) * time.Microsecond; srtt > 0 && srtt/4 < d {
			d = srtt / 4
		}
		if d < 100*time.Microsecond {
			d = 100 * time.Microsecond
		}
		return d
	}
	d := c.opts.RetransmitInterval / 8
	if d > 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// queueAck records a pending cumulative acknowledgment for one
// exchange, merged by maximum — ackable() only advances, so the
// freshest state subsumes older ones. Urgent acks (probe answers,
// please-ack responses, gap reports) flush at once; the rest wait up
// to ackDelay for an outbound segment to piggyback on, or go out
// together as one cumulative standalone datagram when the timer fires.
func (c *Conn) queueAck(s *session, typ MsgType, callNum uint32, ackNum, total int, urgent bool) {
	if c.opts.AckDelay < 0 {
		urgent = true // delaying disabled: every ack goes out at once
	}
	k := sessKey{typ: typ, callNum: callNum}
	s.sendMu.Lock()
	if prev, ok := s.pend[k]; !ok || ackNum > prev.ackNum {
		if ok && prev.total > total {
			total = prev.total
		}
		s.pend[k] = pendAck{ackNum: ackNum, total: total}
	}
	if urgent {
		c.flushOrSchedule(s, false)
		return
	}
	if !s.ackArmed && !s.flushing {
		s.ackArmed = true
		d := c.ackDelay(s)
		if s.ackTimer == nil {
			s.ackTimer = time.AfterFunc(d, func() { c.kickFlush(s, false) })
		} else {
			s.ackTimer.Reset(d)
		}
	}
	s.sendMu.Unlock()
}

// flushOrSchedule decides how queued frames and pending acks leave the
// session: drained by the already-active flusher, deferred briefly to
// gather company (pace — only chosen by callers whose session has
// other transfers in flight, so a serial exchange is never held back),
// or drained now with the caller becoming the flusher.
//
// Pacing waits for a companion, not for the clock: the first paced
// enqueue arms the coalesce-window timer as a backstop, and the next
// paced enqueue — frames from another transfer wanting the same wire —
// flushes both at once. Under concurrent load the wait is therefore
// one inter-arrival gap, not the full window, which keeps the latency
// cost of coalescing near zero while still packing bundles. Caller
// holds s.sendMu, which is released.
func (c *Conn) flushOrSchedule(s *session, pace bool) {
	if s.flushing {
		s.sendMu.Unlock()
		return
	}
	if pace && c.opts.CoalesceWindow > 0 && !s.paceArmed {
		s.paceArmed = true
		if s.paceTimer == nil {
			s.paceTimer = time.AfterFunc(c.opts.CoalesceWindow, func() { c.kickFlush(s, true) })
		} else {
			s.paceTimer.Reset(c.opts.CoalesceWindow)
		}
		s.sendMu.Unlock()
		return
	}
	s.flushing = true
	s.sendMu.Unlock()
	c.flushLoop(s)
}

// kickFlush is the delayed-ack / coalesce timer callback: it starts a
// flush unless one is active, the queue emptied meanwhile, or the Conn
// closed under it.
func (c *Conn) kickFlush(s *session, pace bool) {
	s.sendMu.Lock()
	if pace {
		s.paceArmed = false
	} else {
		s.ackArmed = false
	}
	if c.closed.Load() || s.flushing || (len(s.sendQ) == 0 && len(s.pend) == 0) {
		s.sendMu.Unlock()
		return
	}
	s.flushing = true
	s.sendMu.Unlock()
	c.flushLoop(s)
}

// flushLoop drains the session's send queue and pending acks until
// both are empty, transmitting outside the lock. Exactly one flusher
// runs per session (s.flushing); enqueuers that find it active just
// leave their frames — the single-flusher discipline is also what
// keeps the per-exchange ack sequence monotone on the wire. Work
// enqueued during a transmission is picked up by the next iteration,
// so a burst arriving while the wire is busy coalesces naturally.
func (c *Conn) flushLoop(s *session) {
	var acks []segHeader
	for {
		s.sendMu.Lock()
		if c.closed.Load() {
			s.sendQ = nil
			for k := range s.pend {
				delete(s.pend, k)
			}
		}
		if len(s.sendQ) == 0 && len(s.pend) == 0 {
			s.flushing = false
			s.sendMu.Unlock()
			return
		}
		frames := s.sendQ
		if s.sendSpare != nil {
			s.sendQ = s.sendSpare[:0]
		} else {
			s.sendQ = nil
		}
		s.sendSpare = frames // recycled as the active queue next drain
		acks = acks[:0]
		for k, pa := range s.pend {
			acks = append(acks, segHeader{
				typ:       k.typ,
				ack:       true,
				totalSegs: uint8(pa.total),
				segNum:    uint8(pa.ackNum),
				callNum:   k.callNum,
			})
			delete(s.pend, k)
		}
		if s.ackArmed {
			s.ackTimer.Stop()
			s.ackArmed = false
		}
		if s.paceArmed {
			s.paceTimer.Stop()
			s.paceArmed = false
		}
		s.sendMu.Unlock()
		c.transmitFrames(s.peer, acks, frames)
		// The transport has consumed every frame: drop the wire
		// references (freeing pooled backings whose transfers already
		// ended) and clear the recycled slice's stale payload pointers.
		for i := range frames {
			t := frames[i].t
			frames[i] = outFrame{}
			if t != nil {
				t.wireDone()
			}
		}
	}
}

// completeOutLocked finishes an outbound transfer. Caller holds the
// session lock of t's peer.
func (c *Conn) completeOutLocked(s *session, t *outTransfer, err error) {
	k := sessKey{typ: t.typ, callNum: t.callNum}
	if s.out[k] != t {
		return
	}
	delete(s.out, k)
	t.endWire()
	if err == nil && c.opts.Adaptive && !t.retx && !t.firstSent.IsZero() {
		// Karn's rule: only exchanges that were never retransmitted
		// yield an unambiguous round-trip sample.
		rtt := time.Since(t.firstSent)
		s.rtt.sample(rtt)
		s.srttMicros.Store(s.rtt.srtt.Microseconds())
		if c.tr.EnabledFor(trace.KindRTTSample) {
			c.tr.Emit(trace.Event{Kind: trace.KindRTTSample, Peer: t.peer,
				MsgType: uint8(t.typ), CallNum: t.callNum, Dur: rtt})
		}
	}
	if err == ErrPeerDown && c.tr.EnabledFor(trace.KindCrashSuspect) {
		c.tr.Emit(trace.Event{Kind: trace.KindCrashSuspect, Peer: t.peer,
			MsgType: uint8(t.typ), CallNum: t.callNum,
			Attempt: t.attempts, Err: err.Error(), Detail: "retry exhaustion"})
	}
	t.err = err
	close(t.done)
}

// timerLoop drives retransmission, probing, and replay-record expiry.
func (c *Conn) timerLoop() {
	defer c.wg.Done()
	tick := c.opts.RetransmitInterval / 4
	if p := c.opts.ProbeInterval / 4; p < tick {
		tick = p
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.timerPass()
		}
	}
}

func (c *Conn) timerPass() {
	c.peers.Range(func(_, v any) bool {
		c.timerPassSession(v.(*session))
		return true
	})
}

// timerPassSession runs one retransmission/probe/expiry pass over a
// single peer session. Segment references are collected under the
// session lock and enqueued for transmission outside it; stored
// segments are never mutated after creation, so reading them unlocked
// is safe — the flusher stamps the please-ack bit onto the transmitted
// copy. Everything a pass produces for one peer — retransmissions for
// k transfers, probes, any pending acks — leaves in one coalesced
// flush, so a tick costs one datagram per peer instead of one per
// segment.
func (c *Conn) timerPassSession(s *session) {
	var frames []outFrame

	s.mu.Lock()
	// Clock read under the lock, not at the tick: the previous
	// session's sends run before this one's collection, and the
	// conformance checker derives retransmit gaps from trace
	// timestamps — scheduling against a clock reading older than the
	// emitted stamps would make legitimately-paced retransmits look
	// faster than the RTO floor.
	now := time.Now()
	for _, t := range s.out {
		if now.Before(t.nextSend) {
			continue
		}
		t.attempts++
		if c.opts.Adaptive {
			// Crash declaration is bounded by wall time, not pass
			// count, so exponential backoff cannot delay detection.
			if now.After(t.deadline) {
				c.completeOutLocked(s, t, ErrPeerDown)
				continue
			}
			t.retx = true
			t.rto *= 2
			if t.rto > c.opts.MaxRTO {
				t.rto = c.opts.MaxRTO
			}
			// Backoff means a non-increasing retransmission rate until
			// progress: if scheduling stalls stretched the gap actually
			// kept beyond the RTO, don't speed back up — schedule the
			// next retransmit no sooner than that observed gap.
			interval := t.rto
			if !t.lastRetx.IsZero() {
				if kept := now.Sub(t.lastRetx); kept > interval {
					interval = kept
				}
			}
			t.nextSend = now.Add(interval)
			t.lastRetx = now
		} else {
			if t.attempts > c.opts.MaxRetries {
				c.completeOutLocked(s, t, ErrPeerDown)
				continue
			}
			t.nextSend = now.Add(c.opts.RetransmitInterval)
		}
		// Retransmit the first unacknowledged segment with please-ack
		// set (§4.2.2), or all of them under RetransmitAll (§4.2.4).
		last := t.acked + 1
		if c.opts.Strategy == RetransmitAll {
			last = len(t.segs)
		}
		nsegs := 0
		for i := t.acked + 1; i <= last && i <= len(t.segs); i++ {
			t.wireRefs.Add(1)
			frames = append(frames, outFrame{seg: t.segs[i-1], pa: true, t: t})
			nsegs++
		}
		c.stats.retransmits.Add(int64(nsegs))
		c.stats.segmentsSent.Add(int64(nsegs))
		// Stamped with the pass's own clock reading — the one nextSend
		// was checked and rescheduled against — so the conformance
		// checker's gap computation sees the schedule the timer kept,
		// not jitter from lock waits or sink contention.
		if c.tr.EnabledFor(trace.KindSegRetransmit) {
			c.tr.Emit(trace.Event{Kind: trace.KindSegRetransmit, T: now,
				Peer: s.peer, MsgType: uint8(t.typ), CallNum: t.callNum,
				Attempt: t.attempts, N: nsegs})
		}
	}
	for _, w := range s.watches {
		if now.Before(w.nextProbe) {
			continue
		}
		w.nextProbe = now.Add(c.opts.ProbeInterval)
		w.missed++
		if w.missed > c.opts.ProbeMissLimit {
			if c.tr.Enabled() {
				c.tr.Emit(trace.Event{Kind: trace.KindCrashSuspect,
					Peer: s.peer, MsgType: uint8(w.k.typ), CallNum: w.k.callNum,
					Attempt: w.missed - 1, Detail: "probe misses"})
			}
			close(w.down)
			w.stopLocked()
			continue
		}
		c.stats.probesSent.Add(1)
		frames = append(frames, outFrame{h: segHeader{
			typ:       w.k.typ,
			pleaseAck: true,
			callNum:   w.k.callNum,
		}, probe: true})
	}
	// Expire completed-exchange records once delayed duplicates can no
	// longer arrive (§4.2.4). The scan touches every completed record,
	// so it runs on its own coarse cadence — TTL precision is tens of
	// seconds; paying an O(completed exchanges) walk under the session
	// lock every retransmit tick would tax the call hot path instead.
	if !now.Before(s.nextSweep) {
		s.nextSweep = now.Add(c.opts.CompletedTTL / 8)
		for k, rec := range s.completed {
			if now.Sub(rec.at) > c.opts.CompletedTTL {
				delete(s.completed, k)
			}
		}
	}
	s.mu.Unlock()

	if len(frames) > 0 {
		// Never paced: a retransmission is already late by one RTO, and
		// the whole pass coalesces per peer in this single flush.
		s.sendMu.Lock()
		s.sendQ = append(s.sendQ, frames...)
		c.flushOrSchedule(s, false)
	}
}
