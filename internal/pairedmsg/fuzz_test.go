package pairedmsg

import (
	"testing"
)

// FuzzDecodeSegment: the segment decoder must never panic and must
// reject anything shorter than the Figure 4.2 header.
func FuzzDecodeSegment(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 0, 0, 0, 1})
	f.Add([]byte{1, 3, 255, 255, 0xde, 0xad, 0xbe, 0xef, 'd', 'a', 't', 'a'})
	segs, _ := segmentMessage(Call, 7, []byte("hello fuzz"))
	f.Add(segs[0])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := decodeSegment(data)
		if err != nil {
			if len(data) >= headerLen {
				t.Fatalf("decode rejected a full header: %v", err)
			}
			return
		}
		if len(payload) != len(data)-headerLen {
			t.Fatalf("payload length %d from %d-byte segment", len(payload), len(data))
		}
		// Round-trip: re-encoding the header with the payload must
		// reproduce the input.
		out := h.encode(payload)
		if len(out) != len(data) {
			t.Fatalf("round trip changed length %d -> %d", len(data), len(out))
		}
		for i := 2; i < len(out); i++ { // bytes 0-1 may normalize flag bits
			if out[i] != data[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}

// FuzzSegmentReassembly feeds arbitrary datagrams straight into a
// conn's handlers; nothing may panic or wedge.
func FuzzSegmentReassembly(f *testing.F) {
	f.Add([]byte{0, 0, 2, 1, 0, 0, 0, 1, 'x'})
	f.Add([]byte{0, 2, 2, 2, 0, 0, 0, 1})
	f.Add([]byte{1, 1, 1, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := decodeSegment(data)
		if err != nil {
			return
		}
		// Drive the pure reassembly bookkeeping the way recvLoop does.
		in := &inTransfer{total: int(h.totalSegs), segs: make([][]byte, int(h.totalSegs)+1)}
		if int(h.segNum) >= 1 && int(h.segNum) <= in.total {
			seg := make([]byte, len(payload))
			copy(seg, payload)
			in.segs[h.segNum] = seg
			in.have++
			for in.ackNum < in.total && in.segs[in.ackNum+1] != nil {
				in.ackNum++
			}
		}
	})
}

// FuzzBundleDecode: the bundle decoder must never panic, never yield a
// frame that lies outside the input or is shorter than a segment
// header, and must decode a well-formed bundle back to its frames.
func FuzzBundleDecode(f *testing.F) {
	// A valid two-frame bundle.
	segs, _ := segmentMessage(Call, 7, []byte("hello"))
	valid := []byte{bundleMagic, 0}
	valid = appendBundleFrame(valid, segs[0])
	ackSeg := make([]byte, headerLen)
	ackSeg[0] = byte(Return)
	ackSeg[1] = ctlAck
	valid = appendBundleFrame(valid, ackSeg)
	f.Add(valid)
	f.Add([]byte{})                               // empty
	f.Add([]byte{bundleMagic})                    // magic alone
	f.Add([]byte{bundleMagic, 1})                 // count but no frames
	f.Add([]byte{bundleMagic, 1, 0xff, 0xff})     // oversized frame length
	f.Add([]byte{bundleMagic, 2, 0, 8, 0, 0, 2, 1, 0, 0, 0, 1}) // count overruns frames
	f.Add([]byte{bundleMagic, 1, 0, 2, 1, 1})     // frame below headerLen
	f.Add(append([]byte{bundleMagic, 255}, valid[2:]...)) // inflated count
	f.Add([]byte{0, 0, 2, 1, 0, 0, 0, 1, 'x'})    // plain segment, not a bundle
	f.Fuzz(func(t *testing.T, data []byte) {
		var frames [][]byte
		decodeBundle(data, func(frame []byte) {
			if len(frame) < headerLen {
				t.Fatalf("yielded %d-byte frame, below header length", len(frame))
			}
			frames = append(frames, frame)
		})
		if len(data) < bundleHdrLen || data[0] != bundleMagic {
			if len(frames) != 0 {
				t.Fatalf("non-bundle input yielded %d frames", len(frames))
			}
			return
		}
		if len(frames) > int(data[1]) {
			t.Fatalf("yielded %d frames from a count of %d", len(frames), data[1])
		}
		total := bundleHdrLen
		for _, fr := range frames {
			total += bundleFrameHdrLen + len(fr)
		}
		if total > len(data) {
			t.Fatalf("yielded frames span %d bytes of a %d-byte bundle", total, len(data))
		}
		// Every yielded frame must survive the segment decoder without
		// panicking, the way recvLoop consumes them.
		for _, fr := range frames {
			decodeSegment(fr)
		}
	})
}

// TestBundleRoundTrip pins the framing format: frames packed by
// appendBundleFrame come back byte-identical and in order.
func TestBundleRoundTrip(t *testing.T) {
	segsA, _ := segmentMessage(Call, 1, []byte("first"))
	segsB, _ := segmentMessage(Return, 2, []byte("second message"))
	in := [][]byte{segsA[0], segsB[0]}
	buf := []byte{bundleMagic, 0}
	for _, s := range in {
		buf = appendBundleFrame(buf, s)
	}
	if buf[1] != 2 {
		t.Fatalf("frame count byte = %d, want 2", buf[1])
	}
	var out [][]byte
	decodeBundle(buf, func(frame []byte) {
		out = append(out, append([]byte(nil), frame...))
	})
	if len(out) != len(in) {
		t.Fatalf("decoded %d frames, want %d", len(out), len(in))
	}
	for i := range in {
		if string(out[i]) != string(in[i]) {
			t.Errorf("frame %d changed: %x -> %x", i, in[i], out[i])
		}
	}
}
