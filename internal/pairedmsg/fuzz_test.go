package pairedmsg

import (
	"testing"
)

// FuzzDecodeSegment: the segment decoder must never panic and must
// reject anything shorter than the Figure 4.2 header.
func FuzzDecodeSegment(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 0, 0, 0, 1})
	f.Add([]byte{1, 3, 255, 255, 0xde, 0xad, 0xbe, 0xef, 'd', 'a', 't', 'a'})
	segs, _ := segmentMessage(Call, 7, []byte("hello fuzz"))
	f.Add(segs[0])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := decodeSegment(data)
		if err != nil {
			if len(data) >= headerLen {
				t.Fatalf("decode rejected a full header: %v", err)
			}
			return
		}
		if len(payload) != len(data)-headerLen {
			t.Fatalf("payload length %d from %d-byte segment", len(payload), len(data))
		}
		// Round-trip: re-encoding the header with the payload must
		// reproduce the input.
		out := h.encode(payload)
		if len(out) != len(data) {
			t.Fatalf("round trip changed length %d -> %d", len(data), len(out))
		}
		for i := 2; i < len(out); i++ { // bytes 0-1 may normalize flag bits
			if out[i] != data[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}

// FuzzSegmentReassembly feeds arbitrary datagrams straight into a
// conn's handlers; nothing may panic or wedge.
func FuzzSegmentReassembly(f *testing.F) {
	f.Add([]byte{0, 0, 2, 1, 0, 0, 0, 1, 'x'})
	f.Add([]byte{0, 2, 2, 2, 0, 0, 0, 1})
	f.Add([]byte{1, 1, 1, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := decodeSegment(data)
		if err != nil {
			return
		}
		// Drive the pure reassembly bookkeeping the way recvLoop does.
		in := &inTransfer{total: int(h.totalSegs), segs: make([][]byte, int(h.totalSegs)+1)}
		if int(h.segNum) >= 1 && int(h.segNum) <= in.total {
			seg := make([]byte, len(payload))
			copy(seg, payload)
			in.segs[h.segNum] = seg
			in.have++
			for in.ackNum < in.total && in.segs[in.ackNum+1] != nil {
				in.ackNum++
			}
		}
	})
}
