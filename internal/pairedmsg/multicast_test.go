package pairedmsg

import (
	"bytes"
	"context"
	"testing"
	"time"

	"circus/internal/netsim"
	"circus/internal/transport"
)

// unicastOnly hides an endpoint's Multicaster implementation.
type unicastOnly struct{ transport.Endpoint }

func TestMulticastDeliversToAll(t *testing.T) {
	n := netsim.New(61)
	epA, _ := n.Listen(n.NewHost(), 0)
	epB, _ := n.Listen(n.NewHost(), 0)
	epC, _ := n.Listen(n.NewHost(), 0)
	a, b, c := New(epA, fastOpts()), New(epB, fastOpts()), New(epC, fastOpts())
	defer a.Close()
	defer b.Close()
	defer c.Close()

	cn := a.NextMulticastCallNum()
	group := []transport.Addr{epB.Addr(), epC.Addr()}
	transfers, err := a.StartSendMulticast(group, Call, cn, []byte("to all"))
	if err != nil {
		t.Fatalf("StartSendMulticast: %v", err)
	}
	if len(transfers) != 2 {
		t.Fatalf("transfers = %d", len(transfers))
	}
	for _, conn := range []*Conn{b, c} {
		m, ok := recvMsg(t, conn, time.Second)
		if !ok {
			t.Fatal("member missed multicast message")
		}
		if m.CallNum != cn || string(m.Data) != "to all" {
			t.Fatalf("got %+v", m)
		}
	}
	// Sending returns completes both transfers (implicit ack).
	b.Send(context.Background(), epA.Addr(), Return, cn, []byte("r"))
	c.Send(context.Background(), epA.Addr(), Return, cn, []byte("r"))
	for i, tr := range transfers {
		select {
		case <-tr.Done():
			if tr.Err() != nil {
				t.Fatalf("transfer %d: %v", i, tr.Err())
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("transfer %d never completed", i)
		}
	}
}

func TestMulticastOneSendOpPerSegment(t *testing.T) {
	n := netsim.New(62)
	epA, _ := n.Listen(n.NewHost(), 0)
	epB, _ := n.Listen(n.NewHost(), 0)
	epC, _ := n.Listen(n.NewHost(), 0)
	a, b, c := New(epA, fastOpts()), New(epB, fastOpts()), New(epC, fastOpts())
	defer a.Close()
	defer b.Close()
	defer c.Close()

	msg := bytes.Repeat([]byte("z"), 3*maxSegPayload) // 3 segments
	cn := a.NextMulticastCallNum()
	if _, err := a.StartSendMulticast([]transport.Addr{epB.Addr(), epC.Addr()}, Call, cn, msg); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, b, 2*time.Second); !ok {
		t.Fatal("b missed message")
	}
	if _, ok := recvMsg(t, c, 2*time.Second); !ok {
		t.Fatal("c missed message")
	}
	st := n.Stats()
	// 3 segments × 1 multicast op (+ acks from receivers are unicast
	// ops from other endpoints). The initial transmission must have
	// used exactly 3 send ops from a.
	if st.Datagrams < 6 {
		t.Fatalf("datagrams = %d, want ≥ 6 (3 segments × 2 members)", st.Datagrams)
	}
}

func TestMulticastPerPeerRetransmission(t *testing.T) {
	// One member sits behind a fully lossy link initially; its copy is
	// recovered by per-peer unicast retransmission after healing.
	n := netsim.New(63)
	hA, hB, hC := n.NewHost(), n.NewHost(), n.NewHost()
	epA, _ := n.Listen(hA, 0)
	epB, _ := n.Listen(hB, 0)
	epC, _ := n.Listen(hC, 0)
	a, b, c := New(epA, fastOpts()), New(epB, fastOpts()), New(epC, fastOpts())
	defer a.Close()
	defer b.Close()
	defer c.Close()

	n.SetLinkBetween(hA, hC, netsim.LinkConfig{LossRate: 1})
	cn := a.NextMulticastCallNum()
	transfers, err := a.StartSendMulticast([]transport.Addr{epB.Addr(), epC.Addr()}, Call, cn, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := recvMsg(t, b, time.Second); !ok {
		t.Fatal("healthy member missed message")
	}
	time.Sleep(30 * time.Millisecond)
	n.SetLinkBetween(hA, hC, netsim.LinkConfig{})
	if m, ok := recvMsg(t, c, 2*time.Second); !ok || string(m.Data) != "m" {
		t.Fatal("lossy member never recovered the message")
	}
	select {
	case <-transfers[1].Done():
		if transfers[1].Err() != nil {
			t.Fatalf("transfer: %v", transfers[1].Err())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recovered transfer never acknowledged")
	}
}

func TestMulticastUnsupportedEndpoint(t *testing.T) {
	n := netsim.New(64)
	ep, _ := n.Listen(n.NewHost(), 0)
	conn := New(unicastOnly{ep}, fastOpts())
	defer conn.Close()
	_, err := conn.StartSendMulticast([]transport.Addr{{Host: 1, Port: 1}}, Call, 1, []byte("x"))
	if err != ErrNoMulticast {
		t.Fatalf("err = %v, want ErrNoMulticast", err)
	}
}

func TestMulticastCallNumsDisjointFromUnicast(t *testing.T) {
	n := netsim.New(65)
	ep, _ := n.Listen(n.NewHost(), 0)
	conn := New(ep, fastOpts())
	defer conn.Close()
	peer := transport.Addr{Host: 5, Port: 5}
	u := conn.NextCallNum(peer)
	m := conn.NextMulticastCallNum()
	if u&0x80000000 != 0 {
		t.Fatalf("unicast call number %x in multicast space", u)
	}
	if m&0x80000000 == 0 {
		t.Fatalf("multicast call number %x not namespaced", m)
	}
	if m2 := conn.NextMulticastCallNum(); m2 == m {
		t.Fatal("multicast call numbers not unique")
	}
}

func TestMulticastDuplicateCallNumRejected(t *testing.T) {
	n := netsim.New(66)
	epA, _ := n.Listen(n.NewHost(), 0)
	epB, _ := n.Listen(n.NewHost(), 0)
	a := New(epA, fastOpts())
	defer a.Close()
	group := []transport.Addr{epB.Addr()}
	if _, err := a.StartSendMulticast(group, Call, 0x80000001, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.StartSendMulticast(group, Call, 0x80000001, []byte("y")); err == nil {
		t.Fatal("duplicate multicast call number accepted")
	}
}
