package pairedmsg

import (
	"context"
	"testing"
	"time"

	"circus/internal/netsim"
	"circus/internal/trace"
)

// TestIncomingBackpressureDropAndRedeliver exercises the explicit
// backpressure policy: when the incoming queue is full, an assembled
// message is counted as a delivery drop (and traced), the final ack is
// withheld, and the sender's retransmissions re-offer the message until
// the consumer drains the queue — so every message is still delivered
// exactly once and every transfer completes.
func TestIncomingBackpressureDropAndRedeliver(t *testing.T) {
	opts := fastOpts()
	opts.IncomingBuffer = 1
	opts.MaxRetries = 200 // keep senders retrying while deliveries are parked
	p, rec := newPairTraced(t, 7, netsim.LinkConfig{}, opts)

	const calls = 4
	transfers := make([]*outTransfer, 0, calls)
	sent := make(map[uint32]bool, calls)
	for i := 0; i < calls; i++ {
		cn := p.a.NextCallNum(p.b.Addr())
		tr, err := p.a.StartSend(p.b.Addr(), Call, cn, []byte("parked"))
		if err != nil {
			t.Fatalf("StartSend %d: %v", i, err)
		}
		transfers = append(transfers, tr)
		sent[cn] = true
	}

	// With a 1-slot queue and no consumer, at least one assembled
	// message must be refused and counted.
	deadline := time.Now().Add(2 * time.Second)
	for p.b.Stats().DeliveryDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no delivery drop recorded; stats %+v", p.b.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Drain: every call must still arrive, each exactly once.
	got := make(map[uint32]int, calls)
	for len(got) < calls {
		m, ok := recvMsg(t, p.b, 2*time.Second)
		if !ok {
			t.Fatalf("delivery stalled after drops; got %d/%d, stats %+v",
				len(got), calls, p.b.Stats())
		}
		if !sent[m.CallNum] {
			t.Fatalf("unexpected call number %d", m.CallNum)
		}
		got[m.CallNum]++
		if got[m.CallNum] > 1 {
			t.Fatalf("call %d delivered twice", m.CallNum)
		}
	}

	// The withheld final ack must now go out so senders complete.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i, tr := range transfers {
		if err := p.a.Await(ctx, tr); err != nil {
			t.Fatalf("transfer %d did not complete after drain: %v", i, err)
		}
	}

	if drops := p.b.Stats().DeliveryDrops; drops == 0 {
		t.Fatal("DeliveryDrops reset unexpectedly")
	}
	var delivered, traced int64
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindMsgDelivered:
			if e.MsgType == uint8(Call) {
				delivered++
			}
		case trace.KindDeliveryDrop:
			traced++
		}
	}
	if delivered != calls {
		t.Fatalf("MsgDelivered emitted %d times for %d calls (must be exactly once each)", delivered, calls)
	}
	if traced == 0 {
		t.Fatal("no msg.delivery-drop trace event emitted")
	}
}

// TestRTTIndependentPerPeer checks the satellite requirement that RTT
// estimation lives in the per-peer session: one endpoint talking to a
// fast peer and a slow peer must hold two independent estimates, and
// traffic to one peer must not disturb the other's estimate.
func TestRTTIndependentPerPeer(t *testing.T) {
	n := netsim.New(11)
	hostA, hostB, hostC := n.NewHost(), n.NewHost(), n.NewHost()
	// a<->b stays on the perfect default link; a<->c is slow.
	n.SetLinkBetween(hostA, hostC, netsim.LinkConfig{
		MinDelay: 30 * time.Millisecond,
		MaxDelay: 32 * time.Millisecond,
	})
	epA, err := n.Listen(hostA, 0)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := n.Listen(hostB, 0)
	if err != nil {
		t.Fatal(err)
	}
	epC, err := n.Listen(hostC, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	opts.Adaptive = true                             // RTT estimation on
	opts.RetransmitInterval = 200 * time.Millisecond // no retransmits: every exchange is a Karn-valid sample
	a, b, c := New(epA, opts), New(epB, opts), New(epC, opts)
	t.Cleanup(func() { a.Close(); b.Close(); c.Close() })

	// Echo responders: the Return implicitly acks the Call on its first
	// transmission, so each round trip is a Karn-valid RTT sample.
	for _, peer := range []*Conn{b, c} {
		peer := peer
		go func() {
			for m := range peer.Incoming() {
				if m.Type == Call {
					peer.StartSend(m.From, Return, m.CallNum, m.Data)
				}
			}
		}()
	}
	exchange := func(peer *Conn, rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			cn := a.NextCallNum(peer.Addr())
			if err := a.Send(context.Background(), peer.Addr(), Call, cn, []byte("ping")); err != nil {
				t.Fatalf("send to %v: %v", peer.Addr(), err)
			}
			if _, ok := recvMsg(t, a, 2*time.Second); !ok {
				t.Fatalf("no return from %v", peer.Addr())
			}
		}
	}

	exchange(b, 4)
	exchange(c, 4)

	fast, okB := a.RTT(b.Addr())
	slow, okC := a.RTT(c.Addr())
	if !okB || !okC {
		t.Fatalf("missing RTT estimates: b=%v,%v c=%v,%v", fast, okB, slow, okC)
	}
	if slow < 30*time.Millisecond {
		t.Fatalf("slow peer RTT %v below one-way link delay 30ms", slow)
	}
	if fast >= slow/2 {
		t.Fatalf("fast peer RTT %v not clearly below slow peer RTT %v", fast, slow)
	}

	// Hammering the fast peer must leave the slow peer's estimate
	// untouched: the estimators are per-session, not shared.
	exchange(b, 8)
	slow2, _ := a.RTT(c.Addr())
	if slow2 != slow {
		t.Fatalf("slow peer RTT changed %v -> %v with no traffic to it", slow, slow2)
	}
	fast2, _ := a.RTT(b.Addr())
	if fast2 >= slow2/2 {
		t.Fatalf("fast peer RTT %v drifted toward slow peer's %v", fast2, slow2)
	}
}
