package mesh

import (
	"context"
	"errors"
	"fmt"
	"time"

	"circus/internal/core"
	"circus/internal/trace"
	"circus/internal/wire"
)

// This file is the client half of the spread-read path: instead of the
// strict replicated read — every member executes, the collator demands
// agreement, and a degree-3 shard burns 3× the work per read — the
// client sends the read to ONE member, chosen by load-aware rotation,
// carrying its position token. The member answers only if it has
// applied at least that much state (guard.go's freshness check), so
// the client never observes the service moving backwards; a stale or
// dead member costs a bounce to the next candidate, and a round that
// exhausts the troupe escalates to the strict replicated read the
// caller would have made anyway. Reads therefore scale WITH the
// replication degree, and the escalation ladder — serve, bounce,
// escalate — caps the downside at the old cost.

// hotKeyCap bounds the per-key rate table; reaching it resets the
// table, trading a brief re-warm for a hard memory bound.
const hotKeyCap = 4096

// hotKeys detects hot keys by per-key EWMA read rates. A cold key
// reads from its affinity member (hash-pinned, so each member's cache
// serves a stable key subset); a key whose rate crosses the threshold
// is widened to whole-troupe rotation, spreading its load across every
// replica instead of melting one.
type hotKeys struct {
	threshold float64 // reads/second; <= 0 disables widening
	rate      map[string]*hotStat
}

type hotStat struct {
	ewma float64
	last time.Time
	hot  bool
}

// observe records one read of key and reports whether the key is hot,
// and whether this very read widened it (the cold→hot transition).
func (h *hotKeys) observe(key string, now time.Time) (hot, widened bool) {
	if h.threshold <= 0 {
		return false, false
	}
	s := h.rate[key]
	if s == nil {
		if len(h.rate) >= hotKeyCap {
			h.rate = make(map[string]*hotStat)
		}
		h.rate[key] = &hotStat{last: now}
		return false, false
	}
	dt := now.Sub(s.last).Seconds()
	s.last = now
	if dt <= 0 {
		dt = 1e-6
	}
	// EWMA of the instantaneous rate; alpha 0.2 means ~5 reads of
	// history, quick to catch a flash-hot key, slow enough to ignore a
	// lone burst of two.
	const alpha = 0.2
	s.ewma = alpha*(1/dt) + (1-alpha)*s.ewma
	switch {
	case !s.hot && s.ewma >= h.threshold:
		s.hot = true
		return true, true
	case s.hot && s.ewma < h.threshold/2:
		s.hot = false // hysteresis: cool off at half the trip point
	}
	return s.hot, false
}

// token returns the client's position token for a shard: the highest
// member position any spread reply has shown it. Tokens are per shard
// because positions are per member-ordering — a key migrating to a
// fresh shard starts over under that shard's own counter.
func (c *Client) token(shard string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tokens[shard]
}

// advanceToken raises the shard's token to pos (never lowers it).
func (c *Client) advanceToken(shard string, pos uint64) {
	c.mu.Lock()
	if pos > c.tokens[shard] {
		c.tokens[shard] = pos
	}
	c.mu.Unlock()
}

// readOrder returns the member indexes to try, best first: the
// affinity member for cold keys (stable per-key pinning), whole-troupe
// rotation for hot ones, with suspected members demoted to the back
// in either case.
func (c *Client) readOrder(key string, tr core.Troupe) []int {
	n := tr.Degree()
	c.mu.Lock()
	hot, widened := c.hot.observe(key, time.Now())
	c.mu.Unlock()
	var start int
	if hot {
		start = int(c.rr.Add(1) % uint64(n))
	} else {
		start = int(hash64(key) % uint64(n))
	}
	if widened {
		c.hotWidenings.Add(1)
		if tr := c.rt.Tracer(); tr.EnabledFor(trace.KindSpreadWiden) {
			tr.Emit(trace.Event{Kind: trace.KindSpreadWiden, Detail: key})
		}
	}
	order := make([]int, 0, n)
	var suspected []int
	sus := c.opts.Resilient.Suspicion
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if sus != nil && sus.Suspected(tr.Members[idx]) {
			suspected = append(suspected, idx)
		} else {
			order = append(order, idx)
		}
	}
	return append(order, suspected...)
}

// spreadOutcome classifies one routing round of a spread read.
type spreadOutcome int

const (
	spreadServed spreadOutcome = iota
	spreadInnerError
	spreadEscalate
	spreadWrongShard
	spreadParked
)

// SpreadRead routes one keyed read to a single member of the owner
// shard, carrying the client's position token; see the file comment
// for the escalation ladder. The read must be of a guarded procedure
// (the guard re-derives the key from proc/args and refuses otherwise).
// copts.Collator is ignored on the one-member path and applies only if
// the read escalates to the strict replicated call; copts.Timeout
// bounds each member attempt. Routing refusals (wrong shard, parked)
// are absorbed exactly as Call absorbs them.
func (c *Client) SpreadRead(ctx context.Context, key string, proc uint16, args []byte, copts core.CallOptions) ([]byte, error) {
	redirects, parks := 0, 0
	for {
		m, ring := c.routes()
		if ring == nil {
			return nil, fmt.Errorf("mesh: no shard map for %q", c.service)
		}
		shard := ring.Owner(key)
		rc, err := c.caller(ctx, shard)
		if err != nil {
			return nil, err
		}
		tr := rc.Troupe()
		if tr.Degree() == 0 {
			return c.escalate(ctx, key, proc, args, copts, core.ErrTroupeDown)
		}
		res, outcome, err := c.spreadRound(ctx, key, shard, tr, proc, args, copts)
		switch outcome {
		case spreadServed:
			return res, nil
		case spreadInnerError:
			return nil, err
		case spreadEscalate:
			return c.escalate(ctx, key, proc, args, copts, err)
		case spreadWrongShard:
			c.redirects.Add(1)
			if redirects++; redirects > c.opts.MaxRedirects {
				return nil, fmt.Errorf("mesh: redirect loop spread-reading %q: %w", key, err)
			}
			_, epoch, _ := WrongShard(err)
			if ferr := c.Refresh(ctx); ferr != nil && epoch > m.Epoch {
				return nil, fmt.Errorf("mesh: stale map (epoch %d < guard's %d) and refresh failed: %w", m.Epoch, epoch, ferr)
			}
			continue
		case spreadParked:
			c.parks.Add(1)
			if parks++; parks > c.opts.MaxParkWaits {
				return nil, fmt.Errorf("mesh: key %q parked too long: %w", key, err)
			}
			t := time.NewTimer(c.opts.ParkWait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
			_ = c.Refresh(ctx)
			continue
		}
	}
}

// spreadRound tries each candidate member once. It returns the served
// data, or classifies why the round must be handled above: an inner
// (application) verdict, a routing refusal, or exhaustion (escalate).
func (c *Client) spreadRound(ctx context.Context, key, shard string, tr core.Troupe, proc uint16, args []byte, copts core.CallOptions) ([]byte, spreadOutcome, error) {
	token := c.token(shard)
	sargs, err := wire.Marshal(spreadReadArgs{MinPos: token, Proc: proc, Args: args})
	if err != nil {
		return nil, spreadInnerError, err
	}
	legOpts := core.CallOptions{Timeout: copts.Timeout, AsTroupe: copts.AsTroupe, Thread: copts.Thread}
	ttl := c.opts.Resilient.SuspicionTTL
	if ttl == 0 {
		ttl = 2 * time.Second
	}
	sus := c.opts.Resilient.Suspicion
	var lastErr error = core.ErrTroupeDown
	for _, idx := range c.readOrder(key, tr) {
		raw, err := c.rt.CallMember(ctx, tr, idx, ProcSpreadRead, sargs, legOpts)
		if err == nil {
			var rep spreadReadReply
			if err := wire.Unmarshal(raw, &rep); err != nil {
				lastErr = fmt.Errorf("mesh: garbled spread reply: %w", err)
				continue
			}
			if rep.Pos < token {
				// Protocol violation: the member answered BELOW the
				// position we demanded. A correct guard cannot do this —
				// it is the observable signature of a stale-read bug —
				// so the answer is discarded and counted, never served.
				c.staleServes.Add(1)
				if t := c.rt.Tracer(); t.EnabledFor(trace.KindSpreadStale) {
					t.Emit(trace.Event{Kind: trace.KindSpreadStale,
						Peer: tr.Members[idx].Addr, Member: idx, Troupe: token,
						Detail: "reply below token", N: int(rep.Pos)})
				}
				lastErr = fmt.Errorf("mesh: member served a spread read below the token (pos %d < %d)", rep.Pos, token)
				continue
			}
			c.advanceToken(shard, rep.Pos)
			c.spreadReads.Add(1)
			if t := c.rt.Tracer(); t.EnabledFor(trace.KindSpreadRead) {
				t.Emit(trace.Event{Kind: trace.KindSpreadRead,
					Peer: tr.Members[idx].Addr, Member: idx, Troupe: rep.Pos, Proc: proc})
			}
			return rep.Data, spreadServed, nil
		}
		if _, _, ok := StaleRead(err); ok {
			// Behind the token: bounce to the next candidate.
			c.staleBounces.Add(1)
			if t := c.rt.Tracer(); t.EnabledFor(trace.KindSpreadStale) {
				t.Emit(trace.Event{Kind: trace.KindSpreadStale,
					Peer: tr.Members[idx].Addr, Member: idx, Troupe: token})
			}
			lastErr = err
			continue
		}
		if _, _, ok := WrongShard(err); ok {
			return nil, spreadWrongShard, err
		}
		if _, ok := Parked(err); ok {
			return nil, spreadParked, err
		}
		var app *core.AppError
		if errors.As(err, &app) {
			// The inner procedure's own verdict: an execution completed,
			// so neither bouncing nor escalating may re-run it.
			return nil, spreadInnerError, err
		}
		if errors.Is(err, core.ErrMemberDown) && sus != nil {
			sus.Suspect(tr.Members[idx], ttl)
		}
		lastErr = err
	}
	return nil, spreadEscalate, lastErr
}

// escalate falls back to the strict replicated read — the pre-spread
// path, with whatever collator the caller brought.
func (c *Client) escalate(ctx context.Context, key string, proc uint16, args []byte, copts core.CallOptions, cause error) ([]byte, error) {
	c.escalations.Add(1)
	if t := c.rt.Tracer(); t.EnabledFor(trace.KindSpreadEscalate) {
		e := trace.Event{Kind: trace.KindSpreadEscalate, Proc: proc}
		if cause != nil {
			e.Err = cause.Error()
		}
		t.Emit(e)
	}
	return c.Call(ctx, key, proc, args, copts)
}
