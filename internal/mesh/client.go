package mesh

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/core"
	"circus/internal/ringmaster"
)

// Options configures a mesh client.
type Options struct {
	// Resilient configures the per-shard resilient callers. The client
	// forces RebindOnTotalFailure on and, when no Suspicion tracker is
	// given, shares one tracker across all shards.
	Resilient core.ResilientOptions
	// MaxRedirects bounds wrong-shard redirects per call. Conflicting
	// maps (a guard behind the client, or vice versa, mid-push) can
	// bounce a call between shards; the bound turns a routing livelock
	// into an error. Zero means 4.
	MaxRedirects int
	// ParkWait is the delay before retrying a parked key. Zero means
	// 20ms.
	ParkWait time.Duration
	// MaxParkWaits bounds those retries; a migration stuck longer than
	// MaxParkWaits*ParkWait surfaces as an error. Zero means 250.
	MaxParkWaits int
	// HotKeyRate is the per-key read rate (reads/second, EWMA-smoothed)
	// above which spread reads widen from the key's affinity member to
	// whole-troupe rotation. Zero means 64; negative disables widening.
	HotKeyRate float64
}

func (o Options) withDefaults() Options {
	if o.MaxRedirects == 0 {
		o.MaxRedirects = 4
	}
	if o.HotKeyRate == 0 {
		o.HotKeyRate = 64
	}
	if o.ParkWait == 0 {
		o.ParkWait = 20 * time.Millisecond
	}
	if o.MaxParkWaits == 0 {
		o.MaxParkWaits = 250
	}
	o.Resilient.RebindOnTotalFailure = true
	if o.Resilient.Suspicion == nil {
		o.Resilient.Suspicion = core.NewSuspicion()
	}
	return o
}

// ClientStats counts a mesh client's routing recoveries and its
// spread-read traffic.
type ClientStats struct {
	// Redirects counts wrong-shard refusals absorbed.
	Redirects int64
	// Parks counts parked refusals waited out.
	Parks int64
	// Refreshes counts shard-map refetches from the Ringmaster.
	Refreshes int64
	// MapPushes counts newer maps installed from Ringmaster pushes
	// (EnableWatch): epochs that arrived before any refusal could.
	MapPushes int64
	// SpreadReads counts reads served by a single member.
	SpreadReads int64
	// StaleBounces counts spread refusals by members behind the token.
	StaleBounces int64
	// Escalations counts spread reads that fell back to the strict
	// replicated read.
	Escalations int64
	// HotWidenings counts cold→hot transitions that widened a key from
	// its affinity member to whole-troupe rotation.
	HotWidenings int64
	// StaleServes counts protocol violations observed by the client: a
	// member answered a spread read from a position BELOW the demanded
	// token. Always zero with correct guards; the planted stale-read
	// bug of the chaos campaigns shows up here.
	StaleServes int64
}

// Client is the routing half of a mesh service: it holds a cached
// shard map, routes each keyed call to its owner shard over a pooled
// resilient caller (one per shard, with the §6.1 binding cache and
// retry/rebind machinery underneath), and reconciles with the servers
// through their refusals — a wrong-shard answer triggers a map refresh
// and a re-route, a parked answer a brief backoff, exactly as a stale
// troupe ID triggers a rebind.
type Client struct {
	rt      *core.Runtime
	binder  *ringmaster.Client
	service string
	opts    Options

	mu       sync.Mutex
	m        *ShardMap
	ring     *Ring
	callers  map[string]*core.ResilientCaller
	tokens   map[string]uint64 // shard -> position token (spread.go)
	hot      hotKeys           // per-key read rates (spread.go)
	watching bool              // push endpoint registered (watch.go)

	rr atomic.Uint64 // hot-key rotation cursor

	redirects    atomic.Int64
	parks        atomic.Int64
	refreshes    atomic.Int64
	mapPushes    atomic.Int64
	spreadReads  atomic.Int64
	staleBounces atomic.Int64
	escalations  atomic.Int64
	hotWidenings atomic.Int64
	staleServes  atomic.Int64
}

// NewClient fetches the service's shard map from the binding agent
// and returns a routing client.
func NewClient(ctx context.Context, rt *core.Runtime, binder *ringmaster.Client, service string, opts Options) (*Client, error) {
	c := &Client{
		rt:      rt,
		binder:  binder,
		service: service,
		opts:    opts.withDefaults(),
		callers: make(map[string]*core.ResilientCaller),
		tokens:  make(map[string]uint64),
	}
	c.hot = hotKeys{threshold: c.opts.HotKeyRate, rate: make(map[string]*hotStat)}
	if err := c.Refresh(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Map returns the cached shard map.
func (c *Client) Map() *ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// Stats returns a snapshot of the routing counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Redirects:    c.redirects.Load(),
		Parks:        c.parks.Load(),
		Refreshes:    c.refreshes.Load(),
		MapPushes:    c.mapPushes.Load(),
		SpreadReads:  c.spreadReads.Load(),
		StaleBounces: c.staleBounces.Load(),
		Escalations:  c.escalations.Load(),
		HotWidenings: c.hotWidenings.Load(),
		StaleServes:  c.staleServes.Load(),
	}
}

// Refresh refetches the shard map from the binding agent, installing
// it if its epoch is newer, and drops callers of shards that left the
// map.
func (c *Client) Refresh(ctx context.Context) error {
	m, err := FetchShardMap(ctx, c.binder, c.service)
	if err != nil {
		return err
	}
	c.refreshes.Add(1)
	c.install(m)
	return nil
}

// install installs m if its epoch is newer than the cached map's,
// dropping callers of shards that left, and reports whether it did.
// Shared by the pull path (Refresh) and the push path (watch.go).
func (c *Client) install(m *ShardMap) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m != nil && m.Epoch <= c.m.Epoch {
		return false
	}
	c.m, c.ring = m, m.Ring()
	live := make(map[string]bool, len(m.Shards))
	for _, s := range m.Shards {
		live[s] = true
	}
	for name := range c.callers {
		if !live[name] {
			delete(c.callers, name)
		}
	}
	return true
}

// routes returns the cached map/ring pair.
func (c *Client) routes() (*ShardMap, *Ring) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m, c.ring
}

// caller returns the pooled resilient caller for a shard, importing
// the shard troupe on first use.
func (c *Client) caller(ctx context.Context, shard string) (*core.ResilientCaller, error) {
	c.mu.Lock()
	rc, ok := c.callers[shard]
	c.mu.Unlock()
	if ok {
		return rc, nil
	}
	fresh, err := c.binder.NewResilientCaller(ctx, shard, c.opts.Resilient)
	if err != nil {
		return nil, fmt.Errorf("mesh: importing shard %q: %w", shard, err)
	}
	c.mu.Lock()
	if rc, ok = c.callers[shard]; !ok {
		c.callers[shard] = fresh
		rc = fresh
	}
	c.mu.Unlock()
	return rc, nil
}

// Owner returns the shard currently routing key under the cached map.
func (c *Client) Owner(key string) string {
	_, ring := c.routes()
	if ring == nil {
		return ""
	}
	return ring.Owner(key)
}

// ShardCaller returns the resilient caller for the shard owning key —
// the escape hatch for callers that need call-level control (custom
// collators, direct member access) while still routing by key.
func (c *Client) ShardCaller(ctx context.Context, key string) (string, *core.ResilientCaller, error) {
	_, ring := c.routes()
	if ring == nil {
		return "", nil, fmt.Errorf("mesh: no shard map for %q", c.service)
	}
	shard := ring.Owner(key)
	rc, err := c.caller(ctx, shard)
	return shard, rc, err
}

// Call routes one keyed call to its owner shard, absorbing the
// routing faults: wrong-shard refusals refresh the map and re-route
// (bounded by MaxRedirects), parked refusals back off and retry
// (bounded by MaxParkWaits), and everything beneath — member crashes,
// stale troupe bindings, partitions — is absorbed by the per-shard
// resilient caller. See ResilientCaller.Call for retry safety: args
// may execute once per attempt.
func (c *Client) Call(ctx context.Context, key string, proc uint16, args []byte, copts core.CallOptions) ([]byte, error) {
	redirects, parks := 0, 0
	for {
		m, ring := c.routes()
		if ring == nil {
			return nil, fmt.Errorf("mesh: no shard map for %q", c.service)
		}
		shard := ring.Owner(key)
		rc, err := c.caller(ctx, shard)
		if err != nil {
			return nil, err
		}
		res, err := rc.Call(ctx, proc, args, copts)
		if err == nil {
			return res, nil
		}
		if owner, epoch, ok := WrongShard(err); ok {
			c.redirects.Add(1)
			if redirects++; redirects > c.opts.MaxRedirects {
				return nil, fmt.Errorf("mesh: redirect loop routing %q (last owner hint %q): %w", key, owner, err)
			}
			// A guard ahead of us has the map we are missing; a guard
			// behind us will catch up to the one we already have. Either
			// way the binder holds the newest published epoch — refetch
			// and re-route.
			if ferr := c.Refresh(ctx); ferr != nil && epoch > m.Epoch {
				return nil, fmt.Errorf("mesh: stale map (epoch %d < guard's %d) and refresh failed: %w", m.Epoch, epoch, ferr)
			}
			continue
		}
		if _, ok := Parked(err); ok {
			c.parks.Add(1)
			if parks++; parks > c.opts.MaxParkWaits {
				return nil, fmt.Errorf("mesh: key %q parked too long: %w", key, err)
			}
			t := time.NewTimer(c.opts.ParkWait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			t.Stop()
			_ = c.Refresh(ctx) // the unparking epoch may already be out
			continue
		}
		return nil, err
	}
}
