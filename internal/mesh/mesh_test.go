package mesh_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"circus"
	"circus/internal/chaos"
	"circus/internal/core"
	"circus/internal/mesh"
)

func simResilient(seed int64) circus.ResilientOptions {
	return circus.ResilientOptions{
		Seed:         seed,
		MaxAttempts:  10,
		Backoff:      circus.Backoff{Initial: 15 * time.Millisecond, Max: 250 * time.Millisecond},
		SuspicionTTL: 400 * time.Millisecond,
	}
}

// fixture is a mesh service on the simulated internet: a binder node,
// per-shard troupes of guarded chaos KVs, and helpers to grow it.
type fixture struct {
	t      *testing.T
	sim    *circus.SimNetwork
	binder *circus.Node
	admin  *circus.Node // an ordinary node with a binder client, for test bookkeeping
	boot   []circus.ModuleAddr

	shards map[string]*shardT
}

type shardT struct {
	nodes  []*circus.Node
	kvs    []*chaos.KV
	guards []*mesh.Guard
}

func newFixture(t *testing.T, seed int64) *fixture {
	t.Helper()
	sim := circus.NewSimNetwork(seed)
	binder, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { binder.Close() })
	if _, err := binder.ServeRingmaster(); err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, sim: sim, binder: binder,
		boot: binder.BinderAddrs(), shards: make(map[string]*shardT)}
	admin, err := sim.NewNode(circus.WithBinder(f.boot))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { admin.Close() })
	f.admin = admin
	return f
}

// addShard builds a degree-3 guarded KV troupe and registers it by
// exporting each member.
func (f *fixture) addShard(name string) *shardT {
	f.t.Helper()
	s := &shardT{}
	for i := 0; i < 3; i++ {
		n, err := f.sim.NewNode(circus.WithBinder(f.boot))
		if err != nil {
			f.t.Fatal(err)
		}
		f.t.Cleanup(func() { n.Close() })
		kv := chaos.NewKV()
		g := mesh.NewGuard(name, kv, chaos.KVKeys)
		if _, err := n.Export(name, g); err != nil {
			f.t.Fatal(err)
		}
		s.nodes = append(s.nodes, n)
		s.kvs = append(s.kvs, kv)
		s.guards = append(s.guards, g)
	}
	f.shards[name] = s
	return s
}

func (f *fixture) controller() *mesh.Controller {
	f.t.Helper()
	n, err := f.sim.NewNode(circus.WithBinder(f.boot))
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { n.Close() })
	ctl := mesh.NewController(n.Runtime(), n.Binder(), "kv", chaos.KVCodec{})
	ctl.Resilient = simResilient(77)
	return ctl
}

func (f *fixture) client(ctx context.Context, seed int64) *mesh.Client {
	f.t.Helper()
	n, err := f.sim.NewNode(circus.WithBinder(f.boot))
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { n.Close() })
	c, err := mesh.NewClient(ctx, n.Runtime(), n.Binder(), "kv",
		mesh.Options{Resilient: simResilient(seed)})
	if err != nil {
		f.t.Fatal(err)
	}
	return c
}

// reconcile heals intra-shard divergence the way the chaos repairman
// does (union merge of member states): a member that was wrongly
// suspected during an ack missed that write by design, and unanimous
// reads disagree until a repair pass runs. The mesh tests run no
// repairman, so they reconcile explicitly before verification.
func (f *fixture) reconcile(names ...string) {
	f.t.Helper()
	for _, name := range names {
		kvs := f.shards[name].kvs
		for _, src := range kvs {
			st, err := src.GetState()
			if err != nil {
				f.t.Fatal(err)
			}
			for _, dst := range kvs {
				if err := dst.SetState(st); err != nil {
					f.t.Fatal(err)
				}
			}
		}
	}
}

func put(ctx context.Context, c *mesh.Client, key, val string) error {
	args, err := chaos.PutArgs(key, val)
	if err != nil {
		return err
	}
	_, err = c.Call(ctx, key, chaos.ProcPut, args, core.CallOptions{Timeout: 2 * time.Second})
	return err
}

func get(ctx context.Context, c *mesh.Client, key string) (string, error) {
	res, err := c.Call(ctx, key, chaos.ProcGet, []byte(key), core.CallOptions{Timeout: 2 * time.Second})
	return string(res), err
}

// TestMeshSplitLive is the tentpole scenario: a 2-shard mesh absorbs
// writes while a third shard is split in; every key acked before,
// during, or after the migration must be readable afterwards, moved
// keys must live on the new shard (and be deleted from the old), and
// per-shard replicas must agree.
func TestMeshSplitLive(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 11)
	f.addShard("kv/s0")
	f.addShard("kv/s1")
	ctl := f.controller()
	ctl.Log = t.Logf
	if _, err := ctl.Bootstrap(ctx, []string{"kv/s0", "kv/s1"}, 0); err != nil {
		t.Fatal(err)
	}
	c := f.client(ctx, 2)

	var (
		mu    sync.Mutex
		acked = map[string]string{}
	)
	for i := 0; i < 120; i++ {
		k, v := fmt.Sprintf("pre.k%03d", i), fmt.Sprintf("v%03d", i)
		if err := put(ctx, c, k, v); err != nil {
			t.Fatalf("pre-split put %s: %v", k, err)
		}
		acked[k] = v
	}

	// Writers keep the traffic flowing through the migration window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k, v := fmt.Sprintf("mid.g%d.k%03d", g, i), fmt.Sprintf("v.g%d.%03d", g, i)
				if err := put(ctx, c, k, v); err == nil {
					mu.Lock()
					acked[k] = v
					mu.Unlock()
				}
			}
		}()
	}

	f.addShard("kv/s2")
	time.Sleep(50 * time.Millisecond) // let mid-traffic build up
	if err := ctl.Split(ctx, "kv/s2"); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("split: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("post.k%03d", i), fmt.Sprintf("p%03d", i)
		if err := put(ctx, c, k, v); err != nil {
			t.Fatalf("post-split put %s: %v", k, err)
		}
		acked[k] = v
	}

	m := c.Map()
	if len(m.Shards) != 3 || m.IsParked("kv/s2") {
		t.Fatalf("final map: %+v", m)
	}
	// Migration cleanup really dropped the moved range from its old
	// owners. Checked before reconciliation (which would union a
	// suspicion-skipped member's stale copy back in); one straggler
	// member per shard is tolerated for the same reason the delete was
	// acked without it.
	ring := m.Ring()
	ownedByNew := 0
	for k := range acked {
		if ring.Owner(k) != "kv/s2" {
			continue
		}
		ownedByNew++
		for _, old := range []string{"kv/s0", "kv/s1"} {
			still := 0
			for _, kv := range f.shards[old].kvs {
				if _, ok := kv.Snapshot()[k]; ok {
					still++
				}
			}
			if still > 1 {
				t.Fatalf("moved key %s still on %d members of %s after cleanup", k, still, old)
			}
		}
	}
	if ownedByNew == 0 {
		t.Fatal("split moved no keys to the new shard")
	}

	// Zero acked-write loss, end to end through routing: reconcile
	// (standing in for the repairman), then unanimous reads.
	f.reconcile("kv/s0", "kv/s1", "kv/s2")
	for k, v := range acked {
		got, err := get(ctx, c, k)
		if err != nil {
			t.Fatalf("get %s after split: %v", k, err)
		}
		if got != v {
			t.Fatalf("acked write lost or corrupted: %s = %q, want %q", k, got, v)
		}
	}
	for _, kv := range f.shards["kv/s2"].kvs {
		snap := kv.Snapshot()
		for k, v := range acked {
			if ring.Owner(k) == "kv/s2" && snap[k] != v {
				t.Fatalf("moved key %s missing from a kv/s2 member", k)
			}
		}
	}
	t.Logf("split: %d/%d keys now on kv/s2; client stats %+v", ownedByNew, len(acked), c.Stats())
}

// TestMeshMergeLive shrinks a 3-shard mesh to 2 under the same
// no-lost-update obligation.
func TestMeshMergeLive(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 23)
	for _, s := range []string{"kv/s0", "kv/s1", "kv/s2"} {
		f.addShard(s)
	}
	ctl := f.controller()
	ctl.Log = t.Logf
	if _, err := ctl.Bootstrap(ctx, []string{"kv/s0", "kv/s1", "kv/s2"}, 0); err != nil {
		t.Fatal(err)
	}
	c := f.client(ctx, 3)
	acked := map[string]string{}
	for i := 0; i < 150; i++ {
		k, v := fmt.Sprintf("m.k%03d", i), fmt.Sprintf("v%03d", i)
		if err := put(ctx, c, k, v); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		acked[k] = v
	}
	if err := ctl.Merge(ctx, "kv/s1"); err != nil {
		t.Fatalf("merge: %v", err)
	}
	f.reconcile("kv/s0", "kv/s2")
	for k, v := range acked {
		got, err := get(ctx, c, k)
		if err != nil {
			t.Fatalf("get %s after merge: %v", k, err)
		}
		if got != v {
			t.Fatalf("acked write lost in merge: %s = %q, want %q", k, got, v)
		}
	}
	final := c.Map()
	if len(final.Shards) != 2 {
		t.Fatalf("final map still has %d shards", len(final.Shards))
	}
	for _, s := range final.Shards {
		if s == "kv/s1" {
			t.Fatal("victim still in the map")
		}
	}
}

// TestMeshStaleClientRedirects pins routing edge case 1: a client one
// epoch behind during a split keeps working — its first call to a
// moved key is refused wrong-shard, it refreshes the map, re-routes,
// and succeeds.
func TestMeshStaleClientRedirects(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 31)
	f.addShard("kv/s0")
	f.addShard("kv/s1")
	ctl := f.controller()
	if _, err := ctl.Bootstrap(ctx, []string{"kv/s0", "kv/s1"}, 0); err != nil {
		t.Fatal(err)
	}
	stale := f.client(ctx, 4) // caches the 2-shard epoch-1 map
	acked := map[string]string{}
	for i := 0; i < 100; i++ {
		k, v := fmt.Sprintf("s.k%03d", i), fmt.Sprintf("v%03d", i)
		if err := put(ctx, stale, k, v); err != nil {
			t.Fatal(err)
		}
		acked[k] = v
	}

	f.addShard("kv/s2")
	if err := ctl.Split(ctx, "kv/s2"); err != nil {
		t.Fatal(err)
	}
	if stale.Map().Epoch != 1 {
		t.Fatalf("client refreshed prematurely: epoch %d", stale.Map().Epoch)
	}

	// Find a key the stale map routes to an old shard but whose owner
	// is now kv/s2.
	fresh, err := mesh.FetchShardMap(ctx, f.admin.Binder(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	ring := fresh.Ring()
	moved := ""
	for k := range acked {
		if ring.Owner(k) == "kv/s2" {
			moved = k
			break
		}
	}
	if moved == "" {
		t.Fatal("no acked key moved")
	}
	got, err := get(ctx, stale, moved)
	if err != nil {
		t.Fatalf("stale client get %s: %v", moved, err)
	}
	if got != acked[moved] {
		t.Fatalf("stale client read %q, want %q", got, acked[moved])
	}
	st := stale.Stats()
	if st.Redirects == 0 {
		t.Fatalf("stale client was never redirected: %+v", st)
	}
	if stale.Map().Epoch <= 1 {
		t.Fatalf("redirect did not refresh the map: epoch %d", stale.Map().Epoch)
	}
}

// TestMeshRedirectLoopBound pins routing edge case 2: when a guard
// holds a map the binder never published (so refreshing cannot
// reconcile), the client's redirect budget turns the livelock into an
// error instead of spinning forever.
func TestMeshRedirectLoopBound(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 41)
	s0 := f.addShard("kv/s0")
	ctl := f.controller()
	if _, err := ctl.Bootstrap(ctx, []string{"kv/s0"}, 0); err != nil {
		t.Fatal(err)
	}
	c := f.client(ctx, 5)

	// Poison the guards with an unpublished future map whose phantom
	// shard owns some key.
	poison := &mesh.ShardMap{Service: "kv", Epoch: 99, Shards: []string{"kv/s0", "kv/phantom"}}
	for _, g := range s0.guards {
		g.Install(poison)
	}
	ring := poison.Ring()
	victim := ""
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("r.k%d", i)
		if ring.Owner(k) == "kv/phantom" {
			victim = k
			break
		}
	}
	if victim == "" {
		t.Fatal("phantom shard owns nothing")
	}
	err := put(ctx, c, victim, "v")
	if err == nil {
		t.Fatal("call to a phantom-owned key succeeded")
	}
	if !strings.Contains(err.Error(), "redirect loop") {
		t.Fatalf("err = %v, want bounded redirect loop", err)
	}
	if st := c.Stats(); st.Redirects < 4 {
		t.Fatalf("loop gave up after %d redirects, want the full budget", st.Redirects)
	}
}

// TestMeshTroupeReplaced pins routing edge case 3: a shard's troupe
// is replaced wholesale (every member swapped at once via a fresh
// registration), so no old member survives to answer — let alone to
// refuse with a stale troupe ID. The client's cached binding must
// still recover, through the rebind-on-total-failure path.
func TestMeshTroupeReplaced(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 53)
	old := f.addShard("kv/s0")
	ctl := f.controller()
	if _, err := ctl.Bootstrap(ctx, []string{"kv/s0"}, 0); err != nil {
		t.Fatal(err)
	}
	c := f.client(ctx, 6)
	if err := put(ctx, c, "warm", "w"); err != nil {
		t.Fatal(err) // warm the cached binding
	}

	// Build the replacement troupe, export locally (no incremental
	// registration), install the current map, then register it as the
	// new kv/s0 and kill every old member.
	m, err := mesh.FetchShardMap(ctx, f.admin.Binder(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	var members []circus.ModuleAddr
	repl := &shardT{}
	for i := 0; i < 3; i++ {
		n, err := f.sim.NewNode(circus.WithBinder(f.boot))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		kv := chaos.NewKV()
		g := mesh.NewGuard("kv/s0", kv, chaos.KVKeys)
		g.Install(m)
		members = append(members, n.ExportLocal("kv/s0", g))
		repl.nodes = append(repl.nodes, n)
		repl.kvs = append(repl.kvs, kv)
	}
	if _, err := f.admin.Binder().Register(ctx, "kv/s0", members); err != nil {
		t.Fatal(err)
	}
	for _, n := range old.nodes {
		f.sim.Crash(n)
	}

	// The cached caller still points at three corpses: the only
	// staleness signal is total failure.
	if err := put(ctx, c, "after", "a"); err != nil {
		t.Fatalf("put after wholesale replacement: %v", err)
	}
	got, err := get(ctx, c, "after")
	if err != nil || got != "a" {
		t.Fatalf("get after replacement: %q, %v", got, err)
	}
	for _, kv := range repl.kvs {
		if kv.Snapshot()["after"] != "a" {
			t.Fatal("replacement troupe did not execute the recovered write")
		}
	}
}

// TestMeshSplitResumesParked covers the stuck-migration state: a split
// attempt that published the park epoch but then died before its push
// reached any guard (or before the copy and flip) leaves the new shard
// present-but-parked in the binder's map. A later Split of the same
// shard must resume that migration — re-push the park, copy the range,
// flip — not report "already in the map": a phantom success there
// strands the range parked forever, owning none of its acked data.
func TestMeshSplitResumesParked(t *testing.T) {
	ctx := context.Background()
	f := newFixture(t, 23)
	f.addShard("kv/s0")
	f.addShard("kv/s1")
	ctl := f.controller()
	ctl.Log = t.Logf
	boot, err := ctl.Bootstrap(ctx, []string{"kv/s0", "kv/s1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := f.client(ctx, 5)

	acked := map[string]string{}
	for i := 0; i < 120; i++ {
		k, v := fmt.Sprintf("pre.k%03d", i), fmt.Sprintf("v%03d", i)
		if err := put(ctx, c, k, v); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		acked[k] = v
	}

	// The stuck attempt: the parked map reached the binder, no guard
	// ever saw it, no state moved.
	f.addShard("kv/s2")
	stuck := &mesh.ShardMap{Service: "kv", Epoch: boot.Epoch + 1, Vnodes: boot.Vnodes,
		Shards: []string{"kv/s0", "kv/s1", "kv/s2"}, Parked: []string{"kv/s2"}}
	if err := mesh.PublishMap(ctx, f.admin.Binder(), stuck); err != nil {
		t.Fatal(err)
	}

	if err := ctl.Split(ctx, "kv/s2"); err != nil {
		t.Fatalf("split did not resume the parked migration: %v", err)
	}

	final, err := mesh.FetchShardMap(ctx, f.admin.Binder(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Shards) != 3 || final.IsParked("kv/s2") || final.Epoch != stuck.Epoch+1 {
		t.Fatalf("final map after resume: %+v", final)
	}

	// The copy really ran: every acked key the grown ring assigns to
	// kv/s2 is on its members, and every key still reads back through
	// routing (stale client cache reconciles via refusals).
	ring := final.Ring()
	ownedByNew := 0
	for k, v := range acked {
		if got, err := get(ctx, c, k); err != nil || got != v {
			t.Fatalf("acked write lost after resumed split: %s = %q, %v", k, got, err)
		}
		if ring.Owner(k) != "kv/s2" {
			continue
		}
		ownedByNew++
		for i, kv := range f.shards["kv/s2"].kvs {
			if kv.Snapshot()[k] != v {
				t.Fatalf("moved key %s missing from kv/s2 member %d", k, i)
			}
		}
	}
	if ownedByNew == 0 {
		t.Fatal("resumed split moved no keys to the new shard")
	}
	t.Logf("resumed split: %d/%d keys now on kv/s2", ownedByNew, len(acked))
}
