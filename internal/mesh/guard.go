package mesh

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"circus/internal/core"
	"circus/internal/wire"
)

// Administrative procedure numbers of the guard, in the reserved
// region well clear of application procs (core reserves 0xFFFD-0xFFFF).
const (
	// ProcSetShardMap installs a shard map at every member of a shard
	// troupe (a replicated call, so members stay consistent). Maps only
	// move forward: an older epoch than the installed one is a no-op.
	ProcSetShardMap uint16 = 0xFF00
	// ProcGetShardMap returns the member's installed map.
	ProcGetShardMap uint16 = 0xFF01
	// ProcSpreadRead wraps an inner read so ONE member can answer it
	// alone: the request carries the client's position token, and the
	// member refuses (retryably, like a park) unless it has applied at
	// least that much state — the freshness check that lets a read skip
	// the strict replicated call without serving the client older state
	// than it has already seen.
	ProcSpreadRead uint16 = 0xFF02
)

// Positioned is the inner-module hook of the spread read: the member's
// absolute apply-order position, the same number the rejoin handshake
// exchanges (chaos KV's ProcPosition, the WAL position of durable
// stores). A module that cannot report a position cannot serve spread
// reads.
type Positioned interface {
	Position() int
}

// PlantedStaleReadBug, when true, makes every guard skip the
// position check and answer spread reads from whatever state it has —
// the planted defect the chaos campaigns must catch via the client's
// reply-position check. Test-only, like core.PlantedRebindBug.
var PlantedStaleReadBug = false

// spreadReadArgs is the wire form of a spread read request: the
// client's position token plus the wrapped inner call.
type spreadReadArgs struct {
	MinPos uint64
	Proc   uint16
	Args   []byte
}

// spreadReadReply carries the serving member's position alongside the
// inner result, so the client can advance its token — and audit that
// the member really was at least as fresh as demanded.
type spreadReadReply struct {
	Pos  uint64
	Data []byte
}

// KeyFunc extracts the routing key from a call. guarded=false marks
// procedures outside the keyed data path — state transfer, repair,
// dumps, administrative deletes — which bypass the ownership check:
// they are issued by repairmen and migration coordinators that address
// a specific shard deliberately.
type KeyFunc func(proc uint16, args []byte) (key string, guarded bool)

// Guard wraps a shard's module with the server half of mesh routing:
// the ownership check that makes stale clients detectable. A keyed
// call for a key this shard no longer owns is refused with the
// owner's name and the guard's epoch — the partition-layer analogue of
// the stale-troupe-ID refusal of §6.2 — instead of being served from
// stale data. A key whose owner is parked (mid-migration) is refused
// with a retryable parked error.
//
// A guard with no installed map accepts everything: bootstrap order is
// register-then-publish, and a restarted member refetches the map from
// the Ringmaster before rejoining (see the chaos runner).
type Guard struct {
	self  string
	inner core.Module
	key   KeyFunc

	mu   sync.Mutex
	m    *ShardMap
	ring *Ring
}

// NewGuard wraps inner as shard self of a mesh service.
func NewGuard(self string, inner core.Module, key KeyFunc) *Guard {
	return &Guard{self: self, inner: inner, key: key}
}

var _ core.Module = (*Guard)(nil)
var _ core.StateProvider = (*Guard)(nil)

// Install installs m locally if it is newer than the current map —
// the bootstrap and restart-recovery path; live pushes arrive via
// ProcSetShardMap.
func (g *Guard) Install(m *ShardMap) {
	g.mu.Lock()
	if g.m == nil || m.Epoch > g.m.Epoch {
		g.m, g.ring = m, m.Ring()
	}
	g.mu.Unlock()
}

// Map returns the installed map, nil if none.
func (g *Guard) Map() *ShardMap {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m
}

// Inner returns the wrapped module.
func (g *Guard) Inner() core.Module { return g.inner }

// Dispatch implements core.Module: admin procs, then the ownership
// check, then the wrapped module.
func (g *Guard) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case ProcSetShardMap:
		m, err := DecodeMap(args)
		if err != nil {
			return nil, err
		}
		g.Install(m)
		return nil, nil
	case ProcGetShardMap:
		g.mu.Lock()
		m := g.m
		g.mu.Unlock()
		if m == nil {
			return nil, errors.New("mesh: no shard map installed")
		}
		return m.Encode()
	case ProcSpreadRead:
		return g.spreadRead(call, args)
	}
	if key, guarded := g.key(proc, args); guarded {
		if err := g.checkOwnership(key); err != nil {
			return nil, err
		}
	}
	return g.inner.Dispatch(call, proc, args)
}

// checkOwnership refuses a keyed call this shard must not serve: the
// key's owner is parked (mid-migration) or is another shard entirely.
func (g *Guard) checkOwnership(key string) error {
	g.mu.Lock()
	m, ring := g.m, g.ring
	g.mu.Unlock()
	if m == nil {
		return nil
	}
	owner := ring.Owner(key)
	if m.IsParked(owner) {
		return fmt.Errorf("%s%d", parkedPrefix, m.Epoch)
	}
	if owner != g.self {
		return fmt.Errorf("%sepoch=%d owner=%s", wrongShardPrefix, m.Epoch, owner)
	}
	return nil
}

// spreadRead executes the one-member read path: the same ownership
// check as any keyed call, then the freshness check against the
// client's token, then the wrapped read. The position is captured
// BEFORE the inner dispatch and reported alongside the result — a
// lower bound on the state the answer reflects, so a client advancing
// its token to it never demands more than it was shown.
func (g *Guard) spreadRead(call *core.ServerCall, args []byte) ([]byte, error) {
	var a spreadReadArgs
	if err := wire.Unmarshal(args, &a); err != nil {
		return nil, fmt.Errorf("mesh: garbled spread read: %w", err)
	}
	key, guarded := g.key(a.Proc, a.Args)
	if !guarded {
		return nil, errors.New("mesh: spread read of an unguarded procedure")
	}
	if err := g.checkOwnership(key); err != nil {
		return nil, err
	}
	p, ok := g.inner.(Positioned)
	if !ok {
		return nil, errors.New("mesh: inner module does not report a position")
	}
	pos := uint64(p.Position())
	if pos < a.MinPos && !PlantedStaleReadBug {
		// Behind the client's token: this member has not yet applied
		// state the client has already observed. Refuse retryably — the
		// client bounces to a fresher member or escalates to the strict
		// replicated read.
		return nil, fmt.Errorf("%s%d need=%d", staleReadPrefix, pos, a.MinPos)
	}
	res, err := g.inner.Dispatch(call, a.Proc, a.Args)
	if err != nil {
		return nil, err
	}
	return wire.Marshal(spreadReadReply{Pos: pos, Data: res})
}

// guardState is the externalized guard: the installed map rides along
// with the inner module's state, so a member initialized by state
// transfer (§6.4.1) enforces the same epoch its donor did.
type guardState struct {
	Map   []byte // encoded ShardMap, empty = none installed
	Inner []byte
}

// GetState implements core.StateProvider.
func (g *Guard) GetState() ([]byte, error) {
	sp, ok := g.inner.(core.StateProvider)
	if !ok {
		return nil, errors.New("mesh: inner module does not support state transfer")
	}
	inner, err := sp.GetState()
	if err != nil {
		return nil, err
	}
	st := guardState{Inner: inner}
	g.mu.Lock()
	m := g.m
	g.mu.Unlock()
	if m != nil {
		if st.Map, err = m.Encode(); err != nil {
			return nil, err
		}
	}
	return wire.Marshal(st)
}

// SetState implements core.StateProvider.
func (g *Guard) SetState(data []byte) error {
	sp, ok := g.inner.(core.StateProvider)
	if !ok {
		return errors.New("mesh: inner module does not support state transfer")
	}
	var st guardState
	if err := wire.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("mesh: garbled guard state: %w", err)
	}
	if len(st.Map) > 0 {
		m, err := DecodeMap(st.Map)
		if err != nil {
			return err
		}
		g.Install(m)
	}
	return sp.SetState(st.Inner)
}

// The guard's refusals travel to clients as application errors; the
// prefixes are the wire protocol the client parses.
const (
	wrongShardPrefix = "mesh: wrong shard: "
	parkedPrefix     = "mesh: parked: epoch="
	staleReadPrefix  = "mesh: stale read: pos="
)

// WrongShard extracts a wrong-shard refusal from a call error,
// returning the owning shard and the refusing guard's epoch.
func WrongShard(err error) (owner string, epoch uint64, ok bool) {
	var app *core.AppError
	if !errors.As(err, &app) || !strings.HasPrefix(app.Msg, wrongShardPrefix) {
		return "", 0, false
	}
	if _, serr := fmt.Sscanf(app.Msg[len(wrongShardPrefix):], "epoch=%d owner=%s", &epoch, &owner); serr != nil {
		return "", 0, false
	}
	return owner, epoch, true
}

// StaleRead extracts a stale-read refusal from a call error, returning
// the refusing member's position and the position the client demanded.
func StaleRead(err error) (pos, need uint64, ok bool) {
	var app *core.AppError
	if !errors.As(err, &app) || !strings.HasPrefix(app.Msg, staleReadPrefix) {
		return 0, 0, false
	}
	if _, serr := fmt.Sscanf(app.Msg[len(staleReadPrefix):], "%d need=%d", &pos, &need); serr != nil {
		return 0, 0, false
	}
	return pos, need, true
}

// Parked extracts a parked refusal from a call error, returning the
// refusing guard's epoch.
func Parked(err error) (epoch uint64, ok bool) {
	var app *core.AppError
	if !errors.As(err, &app) || !strings.HasPrefix(app.Msg, parkedPrefix) {
		return 0, false
	}
	if _, serr := fmt.Sscanf(app.Msg[len(parkedPrefix):], "%d", &epoch); serr != nil {
		return 0, false
	}
	return epoch, true
}
