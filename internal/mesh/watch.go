package mesh

import (
	"context"

	"circus/internal/core"
	"circus/internal/ringmaster"
	"circus/internal/trace"
)

// This file is the push half of shard-map distribution. The pull model
// (client calls, guard refuses wrong-shard, client refetches) costs one
// wasted round trip per client per epoch bump; with pushes the
// Ringmaster delivers each newly published map straight to registered
// clients, so in the common case a split or merge completes with ZERO
// client redirects. The pull path stays as the fallback — watcher
// registrations are soft state on the Ringmaster, and a client that
// misses a push recovers through the first refusal exactly as before.

// mapWatcher is the module a watching client exports to receive pushed
// shard maps from the Ringmaster.
type mapWatcher struct {
	c *Client
}

var _ core.Module = (*mapWatcher)(nil)

// Dispatch implements core.Module: decode the pushed map and install it
// if newer. A replicated Ringmaster's members push through the
// publish's own ServerCall, so their legs collate here into one call.
func (w *mapWatcher) Dispatch(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
	if proc != ringmaster.ProcWatcherPush {
		return nil, core.ErrNoSuchProc
	}
	m, err := DecodeMap(args)
	if err != nil {
		return nil, err
	}
	if w.c.install(m) {
		w.c.mapPushes.Add(1)
		if t := w.c.rt.Tracer(); t.EnabledFor(trace.KindShardMapPush) {
			t.Emit(trace.Event{Kind: trace.KindShardMapPush,
				Troupe: m.Epoch, N: len(m.Shards), Detail: m.Service})
		}
	}
	return nil, nil
}

// EnableWatch registers this client for shard-map pushes: it exports a
// small watcher module on the client's runtime and subscribes it at the
// Ringmaster. From then on every accepted publish of the service's map
// is pushed here and installed immediately, keeping steady-state
// redirects at zero; the refusal-driven pull path remains the fallback.
// Idempotent.
func (c *Client) EnableWatch(ctx context.Context) error {
	c.mu.Lock()
	if c.watching {
		c.mu.Unlock()
		return nil
	}
	c.watching = true
	c.mu.Unlock()
	addr := c.rt.Export(&mapWatcher{c: c}, core.ExportOptions{})
	epoch, data, err := c.binder.WatchMap(ctx, c.service, addr)
	if err != nil {
		c.rt.Unexport(addr.Module)
		c.mu.Lock()
		c.watching = false
		c.mu.Unlock()
		return err
	}
	if epoch > 0 && len(data) > 0 {
		if m, derr := DecodeMap(data); derr == nil {
			c.install(m)
		}
	}
	return nil
}
