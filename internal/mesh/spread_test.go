package mesh_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"circus"
	"circus/internal/chaos"
	"circus/internal/core"
	"circus/internal/mesh"
)

// spreadClient is the fixture client with hot-key widening disabled,
// so every read follows the deterministic cold-key affinity rotation.
func spreadClient(ctx context.Context, f *fixture, seed int64) *mesh.Client {
	f.t.Helper()
	n, err := f.sim.NewNode(circus.WithBinder(f.boot))
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { n.Close() })
	c, err := mesh.NewClient(ctx, n.Runtime(), n.Binder(), "kv",
		mesh.Options{Resilient: simResilient(seed), HotKeyRate: -1})
	if err != nil {
		f.t.Fatal(err)
	}
	return c
}

// runStaleScenario drives the spread-read freshness check against a
// genuinely lagging member: preload a batch of keys on all three
// members, crash one, write more keys past it at quorum, bring it
// back, and then spread-read the preloaded keys. Once any read lands
// on an up-to-date member the client's position token passes the
// laggard's position, so every read whose rotation starts at the
// laggard must be refused (stale bounce) — or, with the planted guard
// defect, answered anyway and caught by the client's reply audit.
// Either way the returned values must be correct: the preloaded keys
// are present identically on every member, and audited-stale answers
// are discarded, never surfaced.
func runStaleScenario(t *testing.T, planted bool) mesh.ClientStats {
	t.Helper()
	if planted {
		mesh.PlantedStaleReadBug = true
		t.Cleanup(func() { mesh.PlantedStaleReadBug = false })
	}
	f := newFixture(t, 311)
	s := f.addShard("kv/s0")
	ctl := f.controller()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := ctl.Bootstrap(ctx, []string{"kv/s0"}, 0); err != nil {
		t.Fatal(err)
	}
	c := spreadClient(ctx, f, 313)

	want := make(map[string]string)
	for i := 0; i < 12; i++ {
		key, val := fmt.Sprintf("a%d", i), fmt.Sprintf("v%d", i)
		if err := put(ctx, c, key, val); err != nil {
			t.Fatalf("preload %s: %v", key, err)
		}
		want[key] = val
	}
	// Member 1 sleeps through four more writes; the survivors ack them
	// and move four positions ahead.
	f.sim.Crash(s.nodes[1])
	for i := 0; i < 4; i++ {
		if err := put(ctx, c, fmt.Sprintf("b%d", i), "behind"); err != nil {
			t.Fatalf("quorum write b%d: %v", i, err)
		}
	}
	f.sim.Restart(s.nodes[1])
	// Let the write-time suspicion of the crashed member expire so the
	// read rotation includes it again.
	time.Sleep(600 * time.Millisecond)

	for round := 0; round < 2; round++ {
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("a%d", i)
			out, err := c.SpreadRead(ctx, key, chaos.ProcGet, []byte(key),
				core.CallOptions{Timeout: 2 * time.Second})
			if err != nil {
				t.Fatalf("round %d spread read %s: %v", round, key, err)
			}
			if string(out) != want[key] {
				t.Fatalf("round %d spread read %s: got %q, want %q", round, key, out, want[key])
			}
		}
	}
	return c.Stats()
}

// TestSpreadReadStaleBounce: a healthy guard behind the client's token
// refuses the read, and the client bounces to a fresher member — it
// never records a member answering below the token.
func TestSpreadReadStaleBounce(t *testing.T) {
	st := runStaleScenario(t, false)
	if st.StaleBounces == 0 {
		t.Fatalf("lagging member never bounced a spread read: stats %+v", st)
	}
	if st.StaleServes != 0 {
		t.Fatalf("healthy guards must refuse, not answer, below the token: stats %+v", st)
	}
	if st.SpreadReads == 0 {
		t.Fatalf("no spread reads recorded: stats %+v", st)
	}
}

// TestSpreadReadPlantedBugCaught plants the guard defect that answers
// below the demanded token. The client's reply audit must count every
// such answer (the campaign turns that counter into a violation) while
// still discarding the stale data — runStaleScenario asserts all
// returned values are correct.
func TestSpreadReadPlantedBugCaught(t *testing.T) {
	st := runStaleScenario(t, true)
	if st.StaleServes == 0 {
		t.Fatalf("planted stale-read bug went undetected: stats %+v", st)
	}
}

// TestSplitZeroRedirectsWithPush: a watcher-registered client learns
// each epoch from the Ringmaster's push, so after a live split its
// very first calls route by the new map — zero refusal-driven
// redirects — where a pull-only client would burn a wrong-shard
// round-trip per moved key.
func TestSplitZeroRedirectsWithPush(t *testing.T) {
	f := newFixture(t, 321)
	f.addShard("kv/s0")
	s1 := f.addShard("kv/s1")
	ctl := f.controller()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	boot, err := ctl.Bootstrap(ctx, []string{"kv/s0"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The spare must know the map so its guards refuse keyed traffic
	// until the split admits them.
	for _, g := range s1.guards {
		g.Install(boot)
	}
	c := spreadClient(ctx, f, 322)
	if err := c.EnableWatch(ctx); err != nil {
		t.Fatal(err)
	}

	keys := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			key, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
			if err := put(ctx, c, key, val); err != nil {
				t.Fatalf("put %s: %v", key, err)
			}
			got, err := get(ctx, c, key)
			if err != nil {
				t.Fatalf("get %s: %v", key, err)
			}
			if got != val {
				t.Fatalf("get %s: got %q, want %q", key, got, val)
			}
		}
	}
	keys(0, 24)
	if err := ctl.Split(ctx, "kv/s1"); err != nil {
		t.Fatal(err)
	}
	// The split's epoch publishes pushed the new map before Split
	// returned; this traffic routes over both shards first try.
	keys(24, 48)
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("k%d", i)
		got, err := get(ctx, c, key)
		if err != nil {
			t.Fatalf("post-split get %s: %v", key, err)
		}
		if got != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-split get %s: got %q", key, got)
		}
	}

	st := c.Stats()
	if st.MapPushes == 0 {
		t.Fatalf("no shard-map push reached the watcher: stats %+v", st)
	}
	if st.Redirects != 0 {
		t.Fatalf("push-fed client still redirected %d times: stats %+v", st.Redirects, st)
	}
}
