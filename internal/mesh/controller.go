package mesh

import (
	"context"
	"fmt"

	"circus/internal/collate"
	"circus/internal/core"
	"circus/internal/ringmaster"
)

// StateCodec adapts a shard module's own dump/merge/delete procedures
// for the migration coordinator, which moves key ranges without
// understanding the module's record format. The chaos KV implements
// it over its repair procedures.
type StateCodec interface {
	// Procs returns the module's dump (full state out), merge (state
	// subset in), and delete (batch of keys) procedure numbers.
	Procs() (dump, merge, del uint16)
	// Union folds several members' dumps into one; with exactly-once
	// replicated writes any single member's dump already holds every
	// acked record, so the union only papers over partly-failed reads.
	Union(dumps [][]byte) ([]byte, error)
	// Filter returns the subset of a dump whose keys satisfy keep,
	// and those keys.
	Filter(dump []byte, keep func(key string) bool) (subset []byte, keys []string, err error)
	// EncodeKeys externalizes a key batch for the delete procedure.
	EncodeKeys(keys []string) ([]byte, error)
}

// Controller performs live rebalancing: splitting a shard into the
// mesh or merging one out, while client traffic keeps flowing.
//
// The protocol parks the moving range rather than dual-logging it.
// For a split of new shard B at epoch e:
//
//  1. publish e+1 = shards∪{B}, B parked, and push it to every shard
//     troupe. From here no guard accepts a write to B's range (its
//     old owners refuse the keys as parked; B refuses likewise), so
//     the range is immutable.
//  2. copy: dump each old shard, keep the pairs B now owns, merge
//     them into B's troupe — a replicated call, so the copy is on
//     every member of B (and fsynced, for durable members) before it
//     is acknowledged.
//  3. publish e+2 = shards∪{B}, nothing parked; push. Writes to the
//     range now flow to B.
//  4. delete the moved keys from their old shards (tombstones ride
//     the apply-order log, so shard-internal repair propagates them).
//
// No acknowledged write is lost: every write acked before e+1 is in
// some old shard's dump and therefore copied; during [e+1, e+2) the
// range accepts no writes (clients see parked and retry); after e+2
// writes land on B. If the copy fails (a shard died mid-migration),
// the controller rolls back by publishing the original assignment at
// a fresh epoch — the moved-so-far copies on B are unreachable
// garbage, not lost data. If the controller itself dies (or its
// rollback publish fails) while the published map still parks B, a
// later Split of B finds the parked entry and resumes: re-push the
// park, redo the copy, flip — never a phantom "already in the map"
// success that would strand the range parked and empty.
//
// A merge of shard B is the mirror image: park B's range, copy B's
// pairs to the shards that inherit them (consistent hashing moves
// keys only off the removed shard), publish the map without B.
//
// Consistent hashing guarantees the only ranges that change owners
// are those moving to (split) or off (merge) the subject shard, so
// parking the subject's range alone suffices.
type Controller struct {
	rt      *core.Runtime
	binder  *ringmaster.Client
	service string
	codec   StateCodec
	// Resilient configures the callers used to reach shard troupes.
	Resilient core.ResilientOptions
	// MinCopyDonors, when set, additionally requires at least that
	// many members' dumps before a range copy proceeds. Set it to a
	// majority of the shard's full degree when writes are acked by
	// quorum (or by unanimity-of-unsuspected): the binding may have
	// been shrunken by repair, and a dump drawn from too few members
	// might miss an acked record the absentees hold. A refused dump
	// fails — and rolls back — the migration, which is the safe side.
	MinCopyDonors int
	// PushQuorum, when set, requires that many identical answers
	// before a map push (ProcSetShardMap) is considered installed,
	// instead of the default unanimity-of-survivors, which is
	// satisfied by a single live member. Set it so that fewer than a
	// write quorum of members can remain un-parked (degree minus
	// write quorum plus one): otherwise a park "completes" having
	// reached too few members, and stragglers that never saw it can
	// still form a write quorum after their state was dumped — an
	// acked write the copy misses.
	PushQuorum int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// NewController returns a rebalancing controller for service.
func NewController(rt *core.Runtime, binder *ringmaster.Client, service string, codec StateCodec) *Controller {
	return &Controller{rt: rt, binder: binder, service: service, codec: codec}
}

func (c *Controller) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Bootstrap publishes the service's first shard map (epoch 1) over
// already-registered shard troupes and pushes it to their guards.
func (c *Controller) Bootstrap(ctx context.Context, shards []string, vnodes int) (*ShardMap, error) {
	m := &ShardMap{Service: c.service, Epoch: 1, Vnodes: vnodes, Shards: append([]string(nil), shards...)}
	if err := PublishMap(ctx, c.binder, m); err != nil {
		return nil, err
	}
	if err := c.push(ctx, m, m.Shards); err != nil {
		return nil, err
	}
	return m, nil
}

// push installs m at every member of the named shard troupes via the
// replicated ProcSetShardMap call.
func (c *Controller) push(ctx context.Context, m *ShardMap, shards []string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	var opts core.CallOptions
	if c.PushQuorum > 0 {
		opts.Collator = func(n int) collate.Collator { return collate.Quorum(n, c.PushQuorum) }
	}
	for _, name := range shards {
		rc, err := c.binder.NewResilientCaller(ctx, name, c.Resilient)
		if err != nil {
			return fmt.Errorf("mesh: pushing map to %q: %w", name, err)
		}
		if _, err := rc.Call(ctx, ProcSetShardMap, data, opts); err != nil {
			return fmt.Errorf("mesh: pushing map to %q: %w", name, err)
		}
	}
	return nil
}

// publishNext publishes m at one past the latest epoch the binder
// holds and pushes it to the named shards.
func (c *Controller) publishNext(ctx context.Context, m *ShardMap, pushTo []string) error {
	if err := PublishMap(ctx, c.binder, m); err != nil {
		return err
	}
	return c.push(ctx, m, pushTo)
}

// dumpShard unions the members' dumps of one shard troupe. Every
// bound member must answer: writes ack on the unsuspected (or quorum)
// subset of the troupe, so an acked record may live on any member,
// and a union missing one could miss it. Refusing the dump fails —
// and rolls back — the migration rather than risking the copy.
func (c *Controller) dumpShard(ctx context.Context, name string) ([]byte, error) {
	dumpProc, _, _ := c.codec.Procs()
	rc, err := c.binder.NewResilientCaller(ctx, name, c.Resilient)
	if err != nil {
		return nil, err
	}
	t := rc.Troupe()
	items := c.rt.CallEach(ctx, t, dumpProc, nil, core.CallOptions{})
	var dumps [][]byte
	for i := 0; i < t.Degree(); i++ {
		it, ok := <-items
		if !ok {
			break
		}
		if it.Err == nil {
			dumps = append(dumps, it.Data)
		}
	}
	if len(dumps) < t.Degree() || len(dumps) < c.MinCopyDonors {
		return nil, fmt.Errorf("mesh: migration dump of %q reached %d of %d members (floor %d): refusing a partial copy",
			name, len(dumps), t.Degree(), c.MinCopyDonors)
	}
	return c.codec.Union(dumps)
}

// Split grows the mesh by newShard, an already-registered troupe
// absent from the current map, carving its consistent-hash range out
// of every existing shard while traffic flows.
func (c *Controller) Split(ctx context.Context, newShard string) error {
	cur, err := FetchShardMap(ctx, c.binder, c.service)
	if err != nil {
		return err
	}
	// base is the assignment without newShard — the donors of the copy
	// and the rollback target. newShard may already appear in the
	// published map if a previous attempt parked the range and then
	// failed before the flip (a push that never reached a partitioned
	// shard, or a rollback whose own publish failed): that migration is
	// stuck, not done, and must be resumed — reporting "already in the
	// map" would strand the range parked forever, refusing its writes
	// and owning none of its acked data.
	base := make([]string, 0, len(cur.Shards))
	present := false
	for _, s := range cur.Shards {
		if s == newShard {
			present = true
			continue
		}
		base = append(base, s)
	}
	parkedAlready := false
	for _, p := range cur.Parked {
		if p == newShard {
			parkedAlready = true
		}
	}
	if present && !parkedAlready {
		return fmt.Errorf("mesh: shard %q already in the map", newShard)
	}

	// Step 1: park the moving range (or resume a park already
	// published — the range has been immutable since, so skipping
	// straight to the copy is safe).
	var grown *ShardMap
	if present {
		grown = cur
		// The stuck attempt may have died before its park push reached
		// every member; the park only protects the copy once every
		// guard holds it, so re-push before touching any state.
		if err := c.push(ctx, grown, grown.Shards); err != nil {
			return err
		}
		c.logf("mesh: split %s: resuming parked migration at epoch %d", newShard, cur.Epoch)
	} else {
		grown = &ShardMap{Service: c.service, Epoch: cur.Epoch + 1, Vnodes: cur.Vnodes,
			Shards: append(append([]string(nil), base...), newShard),
			Parked: []string{newShard}}
		if err := c.publishNext(ctx, grown, grown.Shards); err != nil {
			return err
		}
		c.logf("mesh: split %s: epoch %d published, %s parked", newShard, grown.Epoch, newShard)
	}

	// Step 2: copy the range. A failure here rolls the map back — the
	// range never unparked, so nothing acked can be lost.
	ring := grown.Ring()
	moved := make(map[string][]string) // source shard -> keys moved off it
	_, mergeProc, delProc := c.codec.Procs()
	copyRange := func() error {
		for _, src := range base {
			dump, err := c.dumpShard(ctx, src)
			if err != nil {
				return err
			}
			subset, keys, err := c.codec.Filter(dump, func(k string) bool { return ring.Owner(k) == newShard })
			if err != nil {
				return err
			}
			if len(keys) == 0 {
				continue
			}
			rc, err := c.binder.NewResilientCaller(ctx, newShard, c.Resilient)
			if err != nil {
				return err
			}
			if _, err := rc.Call(ctx, mergeProc, subset, core.CallOptions{}); err != nil {
				return fmt.Errorf("mesh: copying %d keys from %q to %q: %w", len(keys), src, newShard, err)
			}
			moved[src] = keys
			c.logf("mesh: split %s: copied %d keys from %s", newShard, len(keys), src)
		}
		return nil
	}
	if err := copyRange(); err != nil {
		rollback := &ShardMap{Service: c.service, Epoch: grown.Epoch + 1, Vnodes: cur.Vnodes,
			Shards: append([]string(nil), base...)}
		if rerr := c.publishNext(ctx, rollback, grown.Shards); rerr != nil {
			return fmt.Errorf("mesh: split %q failed (%v) and rollback failed: %w", newShard, err, rerr)
		}
		c.logf("mesh: split %s: rolled back to original assignment at epoch %d", newShard, rollback.Epoch)
		return fmt.Errorf("mesh: split %q rolled back: %w", newShard, err)
	}

	// Step 3: unpark — the epoch flip that makes B the range's owner.
	flipped := &ShardMap{Service: c.service, Epoch: grown.Epoch + 1, Vnodes: cur.Vnodes,
		Shards: append([]string(nil), grown.Shards...)}
	if err := c.publishNext(ctx, flipped, flipped.Shards); err != nil {
		return err
	}
	c.logf("mesh: split %s: epoch %d live", newShard, flipped.Epoch)

	// Step 4: drop the moved keys from their old owners. Best effort —
	// a leftover copy is unreachable behind the wrong-shard check and
	// costs only space.
	for src, keys := range moved {
		args, err := c.codec.EncodeKeys(keys)
		if err != nil {
			return err
		}
		rc, err := c.binder.NewResilientCaller(ctx, src, c.Resilient)
		if err != nil {
			continue
		}
		if _, err := rc.Call(ctx, delProc, args, core.CallOptions{}); err != nil {
			c.logf("mesh: split %s: cleanup at %s failed (stale copies remain): %v", newShard, src, err)
		}
	}
	return nil
}

// Merge shrinks the mesh by victim: its range is parked, its pairs
// are copied to the shards that inherit them, and the map without it
// is published. The victim troupe itself is left registered; retiring
// it is the caller's decision.
func (c *Controller) Merge(ctx context.Context, victim string) error {
	cur, err := FetchShardMap(ctx, c.binder, c.service)
	if err != nil {
		return err
	}
	rest := make([]string, 0, len(cur.Shards))
	for _, s := range cur.Shards {
		if s != victim {
			rest = append(rest, s)
		}
	}
	if len(rest) == len(cur.Shards) {
		return fmt.Errorf("mesh: shard %q not in the map", victim)
	}
	if len(rest) == 0 {
		return fmt.Errorf("mesh: refusing to merge away the last shard %q", victim)
	}

	// Step 1: park the victim's range.
	parked := &ShardMap{Service: c.service, Epoch: cur.Epoch + 1, Vnodes: cur.Vnodes,
		Shards: append([]string(nil), cur.Shards...), Parked: []string{victim}}
	if err := c.publishNext(ctx, parked, parked.Shards); err != nil {
		return err
	}
	c.logf("mesh: merge %s: epoch %d published, %s parked", victim, parked.Epoch, victim)

	// Step 2: copy the victim's pairs to their inheritors under the
	// shrunken ring.
	restRing := NewRing(rest, cur.Vnodes)
	_, mergeProc, _ := c.codec.Procs()
	copyOut := func() error {
		dump, err := c.dumpShard(ctx, victim)
		if err != nil {
			return err
		}
		for _, heir := range rest {
			subset, keys, err := c.codec.Filter(dump, func(k string) bool { return restRing.Owner(k) == heir })
			if err != nil {
				return err
			}
			if len(keys) == 0 {
				continue
			}
			rc, err := c.binder.NewResilientCaller(ctx, heir, c.Resilient)
			if err != nil {
				return err
			}
			if _, err := rc.Call(ctx, mergeProc, subset, core.CallOptions{}); err != nil {
				return fmt.Errorf("mesh: moving %d keys from %q to %q: %w", len(keys), victim, heir, err)
			}
			c.logf("mesh: merge %s: moved %d keys to %s", victim, len(keys), heir)
		}
		return nil
	}
	if err := copyOut(); err != nil {
		rollback := &ShardMap{Service: c.service, Epoch: parked.Epoch + 1, Vnodes: cur.Vnodes,
			Shards: append([]string(nil), cur.Shards...)}
		if rerr := c.publishNext(ctx, rollback, rollback.Shards); rerr != nil {
			return fmt.Errorf("mesh: merge %q failed (%v) and rollback failed: %w", victim, err, rerr)
		}
		c.logf("mesh: merge %s: rolled back at epoch %d", victim, rollback.Epoch)
		return fmt.Errorf("mesh: merge %q rolled back: %w", victim, err)
	}

	// Step 3: publish the map without the victim. The victim's guard
	// gets the push too, so straggler clients are redirected rather
	// than served stale data.
	shrunk := &ShardMap{Service: c.service, Epoch: parked.Epoch + 1, Vnodes: cur.Vnodes, Shards: rest}
	if err := c.publishNext(ctx, shrunk, cur.Shards); err != nil {
		return err
	}
	c.logf("mesh: merge %s: epoch %d live on %d shards", victim, shrunk.Epoch, len(rest))
	return nil
}
