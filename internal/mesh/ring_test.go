package mesh

import (
	"fmt"
	"testing"

	"circus/internal/core"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("c%d.g%d.k%d", i%7, i%3, i)
	}
	return out
}

func TestRingDeterministicAndComplete(t *testing.T) {
	shards := []string{"kv/s0", "kv/s1", "kv/s2", "kv/s3"}
	a, b := NewRing(shards, 64), NewRing(shards, 64)
	counts := make(map[string]int)
	for _, k := range keys(4000) {
		oa, ob := a.Owner(k), b.Owner(k)
		if oa != ob {
			t.Fatalf("ring not deterministic: %q -> %q vs %q", k, oa, ob)
		}
		if oa == "" {
			t.Fatalf("key %q owned by nobody", k)
		}
		counts[oa]++
	}
	for _, s := range shards {
		if counts[s] < 400 { // 10% of 4000; fair share is 25%
			t.Fatalf("shard %s owns only %d/4000 keys: ring badly unbalanced (%v)", s, counts[s], counts)
		}
	}
}

// TestRingStability pins the consistent-hashing property the
// migration protocol relies on: growing the ring moves keys only TO
// the new shard, shrinking it moves keys only OFF the removed shard.
// Parking the subject shard's range alone is safe precisely because
// no other ownership changes.
func TestRingStability(t *testing.T) {
	old := NewRing([]string{"kv/s0", "kv/s1", "kv/s2"}, 64)
	grown := NewRing([]string{"kv/s0", "kv/s1", "kv/s2", "kv/s3"}, 64)
	movedIn := 0
	for _, k := range keys(4000) {
		was, is := old.Owner(k), grown.Owner(k)
		if was != is {
			if is != "kv/s3" {
				t.Fatalf("grow moved %q between old shards: %q -> %q", k, was, is)
			}
			movedIn++
		}
	}
	if movedIn == 0 {
		t.Fatal("grow moved no keys to the new shard")
	}
	for _, k := range keys(4000) {
		was, is := grown.Owner(k), old.Owner(k)
		if was != "kv/s3" && was != is {
			t.Fatalf("shrink moved %q between survivors: %q -> %q", k, was, is)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if o := NewRing(nil, 8).Owner("k"); o != "" {
		t.Fatalf("empty ring owns %q", o)
	}
}

func TestGuardRefusals(t *testing.T) {
	inner := core.ModuleFunc(func(call *core.ServerCall, proc uint16, args []byte) ([]byte, error) {
		return []byte("served"), nil
	})
	keyFn := func(proc uint16, args []byte) (string, bool) {
		return string(args), proc == 1
	}
	g := NewGuard("kv/s0", inner, keyFn)

	// No map installed: everything passes (bootstrap window).
	if res, err := g.Dispatch(nil, 1, []byte("anything")); err != nil || string(res) != "served" {
		t.Fatalf("unmapped guard: %q, %v", res, err)
	}

	m := &ShardMap{Service: "kv", Epoch: 7, Vnodes: 16, Shards: []string{"kv/s0", "kv/s1"}}
	g.Install(m)
	ring := m.Ring()
	var mine, theirs string
	for _, k := range keys(200) {
		switch ring.Owner(k) {
		case "kv/s0":
			mine = k
		case "kv/s1":
			theirs = k
		}
	}
	if mine == "" || theirs == "" {
		t.Fatal("could not find keys on both shards")
	}

	if res, err := g.Dispatch(nil, 1, []byte(mine)); err != nil || string(res) != "served" {
		t.Fatalf("owned key: %q, %v", res, err)
	}
	// Unguarded procs pass regardless of the key.
	if _, err := g.Dispatch(nil, 2, []byte(theirs)); err != nil {
		t.Fatalf("unguarded proc refused: %v", err)
	}

	_, err := g.Dispatch(nil, 1, []byte(theirs))
	if err == nil {
		t.Fatal("foreign key served")
	}
	// The guard's raw error becomes an AppError at the client; wrap it
	// the way the call layer does before parsing.
	owner, epoch, ok := WrongShard(&core.AppError{Msg: err.Error()})
	if !ok || owner != "kv/s1" || epoch != 7 {
		t.Fatalf("WrongShard(%v) = %q, %d, %v", err, owner, epoch, ok)
	}

	g.Install(&ShardMap{Service: "kv", Epoch: 8, Vnodes: 16,
		Shards: []string{"kv/s0", "kv/s1"}, Parked: []string{"kv/s1"}})
	_, err = g.Dispatch(nil, 1, []byte(theirs))
	if err == nil {
		t.Fatal("parked key served")
	}
	epoch, ok = Parked(&core.AppError{Msg: err.Error()})
	if !ok || epoch != 8 {
		t.Fatalf("Parked(%v) = %d, %v", err, epoch, ok)
	}

	// Stale installs are ignored: maps only move forward.
	g.Install(m)
	if got := g.Map().Epoch; got != 8 {
		t.Fatalf("stale install regressed the map to epoch %d", got)
	}
}
