package mesh

import (
	"context"
	"fmt"

	"circus/internal/ringmaster"
	"circus/internal/wire"
)

// DefaultVnodes is the virtual-node count per shard when a map does
// not specify one.
const DefaultVnodes = 64

// ShardMap is the epoch-versioned partition table of one mesh
// service: which shard troupes exist and which of them are parked.
// The authoritative copy lives in the Ringmaster (published with a
// compare-and-set on the epoch, so concurrent rebalancers serialize);
// every guard and client holds a possibly-stale cached copy and
// reconciles through the epoch number.
//
// Parked shards are the migration window: a key whose owner is parked
// is accepted nowhere — clients back off and retry until the epoch
// that unparks it. Refusal-then-retry rather than dual-logging keeps
// the no-lost-update argument trivial: an acked write is always acked
// by the key's (unique) owner under some epoch, and the migration
// copies the owner's range only while nothing can write to it.
type ShardMap struct {
	// Service is the logical service name, the key under which the map
	// is published in the Ringmaster.
	Service string
	// Epoch versions the map; successors are published at epoch+1.
	Epoch uint64
	// Vnodes is the ring's virtual-node count (0 = DefaultVnodes).
	Vnodes int
	// Shards lists the shard troupe names, each registered with the
	// Ringmaster as an ordinary troupe.
	Shards []string
	// Parked lists shards whose key ranges are mid-migration.
	Parked []string
}

// Ring derives the map's consistent-hash ring.
func (m *ShardMap) Ring() *Ring { return NewRing(m.Shards, m.Vnodes) }

// IsParked reports whether shard is parked in this map.
func (m *ShardMap) IsParked(shard string) bool {
	for _, p := range m.Parked {
		if p == shard {
			return true
		}
	}
	return false
}

// Encode externalizes the map for publication.
func (m *ShardMap) Encode() ([]byte, error) { return wire.Marshal(*m) }

// DecodeMap internalizes a published map.
func DecodeMap(data []byte) (*ShardMap, error) {
	var m ShardMap
	if err := wire.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("mesh: garbled shard map: %w", err)
	}
	return &m, nil
}

// PublishMap offers m to the binding agent at its epoch; the
// Ringmaster accepts it only if the epoch is exactly one past the
// stored one.
func PublishMap(ctx context.Context, binder *ringmaster.Client, m *ShardMap) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return binder.PublishMap(ctx, m.Service, m.Epoch, data)
}

// FetchShardMap retrieves the latest published map for a service.
func FetchShardMap(ctx context.Context, binder *ringmaster.Client, service string) (*ShardMap, error) {
	_, data, err := binder.FetchMap(ctx, service)
	if err != nil {
		return nil, err
	}
	return DecodeMap(data)
}
