// Package mesh composes many troupes into one partitioned service: a
// consistent-hash ring assigns every key to a shard, each shard is an
// ordinary troupe registered with the Ringmaster under its own name
// (and hence its own troupe ID), and an epoch-versioned shard map —
// published through the Ringmaster — tells clients and servers who
// owns what.
//
// The paper's machinery is reused at every joint rather than
// reinvented: clients reach each shard through resilient replicated
// procedure calls with the binding cache of §6.1; ownership changes
// ride the same configuration path as membership changes (§6.2) — a
// new epoch is published, servers learn it and refuse keys they no
// longer own, and clients rebind on the refusal exactly as they do on
// a stale troupe ID. Splitting and merging shards moves key ranges
// with the state-transfer procedures that member rejoin already uses
// (§6.4.1), so a live rebalancing is, mechanically, a repair the
// system already knows how to perform.
package mesh

import "sort"

// hash64 hashes s without allocating: FNV-1a for the byte walk, then
// a 64-bit finalizer (the murmur3 fmix) for avalanche. Raw FNV-1a of
// similar strings — workload keys like "c0.g1.k42", vnode labels of
// one shard — clusters badly: trailing-byte differences barely mix,
// so one shard's points form a contiguous arc and the "ring" degrades
// into a few giant ranges. The finalizer spreads them uniformly.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Ring is a consistent-hash ring over shard names: each shard
// contributes Vnodes points, and a key belongs to the shard owning
// the first point at or clockwise after the key's hash. Virtual nodes
// smooth the partition sizes and, on a split, carve the new shard's
// range out of every existing shard rather than halving one victim.
type Ring struct {
	shards []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int32 // index into shards
}

// NewRing builds the ring for the given shard names. vnodes <= 0
// means DefaultVnodes. The point set is a pure function of the names,
// so every client and server derives the identical ring from the same
// shard map.
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	var buf [8]byte
	for i, name := range r.shards {
		for v := 0; v < vnodes; v++ {
			buf = [8]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v), '#'}
			r.points = append(r.points, ringPoint{
				hash:  hash64(name + string(buf[:5])),
				shard: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Owner returns the shard name owning key, empty if the ring is empty.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	// First point with hash >= h, wrapping to points[0] past the end.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.shards[r.points[lo].shard]
}

// Shards returns the shard names the ring was built over.
func (r *Ring) Shards() []string { return r.shards }
