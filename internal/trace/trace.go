// Package trace is the causal event layer of the runtime: a single
// structured Event type emitted from the paired message protocol, the
// replicated-call machinery, the ringmaster, and the transaction
// subsystem, all carrying enough identity (node, incarnation, peer,
// call number, hierarchical call path) that a whole replicated call
// can be reconstructed causally across troupe members after the fact.
//
// The design center is the disabled case: a component holds a *Local
// emitter that may be nil, and guards every emission with Enabled().
// When no sink is configured the guard is two loads and a branch — no
// Event is built, nothing escapes to the heap — so tracing costs
// nearly nothing on the hot path unless someone is listening.
//
// Sinks receive events synchronously on the emitting goroutine,
// frequently while the emitter holds its own locks. Sinks must
// therefore be cheap, must not block, and must never call back into
// the runtime. The provided sinks (Recorder, JSONL, Metrics) obey
// this rule.
package trace

import (
	"fmt"
	"sync/atomic"
	"time"

	"circus/internal/transport"
)

// Kind classifies an event. The taxonomy follows the protocol layers:
// pairedmsg wire events, core client/server call events, ringmaster
// configuration events, and txn events.
type Kind uint8

const (
	KindUnknown Kind = iota

	// Paired message protocol (internal/pairedmsg).
	KindMsgSend       // message handed to the transport (N = segment count)
	KindSegRetransmit // retransmission pass resent segments (N = count, Attempt = pass)
	KindAckSend       // explicit ack datagram sent
	KindProbeSend     // probe sent to a watched peer
	KindCrashSuspect  // peer declared down (probe misses or retry exhaustion)
	KindRTTSample     // RTT estimator accepted a sample (Dur = RTT)
	KindDupSegment    // duplicate segment suppressed on receive
	KindMsgDelivered  // fully reassembled message delivered upward

	// Replicated calls, client side (internal/core).
	KindCallIssued  // one-to-many call fanned out (N = troupe degree)
	KindMemberReply // one member's reply (or error) collected
	KindCollateDone // collation decided (Dur = call latency, Err on failure)
	KindRebind      // stale binding refreshed from the binding agent

	// Replicated calls, server side (internal/core).
	KindCallStart // execution of a call began at this member
	KindCallDone  // execution finished
	KindDupCall   // duplicate call suppressed (replayed buffered reply)
	KindReplySent // reply message sent back to a caller

	// Binding agent (internal/ringmaster).
	KindRegister     // troupe registered
	KindAddMember    // member added to a troupe
	KindRemoveMember // member removed from a troupe
	KindLookup       // binding looked up
	KindGCRemove     // garbage collector removed an unresponsive member

	// Transactions (internal/txn).
	KindLockAcquire // lock granted
	KindLockRelease // locks released at commit/abort
	KindTxnCommit   // transaction committed
	KindTxnAbort    // transaction aborted
	KindAcceptOrder // broadcast message released for delivery in accept order

	// Appended after the txn block to keep earlier kinds' wire names
	// stable (JSONL stores the dotted string, not the ordinal).
	KindDeliveryDrop // reassembled message not handed up: incoming queue full
	KindBundleSend   // coalesced datagram sent (N = frames packed into it)

	// Durability (internal/wal). Troupe carries the log position —
	// these events have no transport identity and join traces by
	// Detail (the log name).
	KindWALAppend   // record appended (N = payload bytes)
	KindWALSnapshot // snapshot written, log pruned (N = state bytes)
	KindRecover     // recovery replayed the log (N = tail records)
	KindDeltaRejoin // rejoining member initialized via log-suffix transfer (N = bytes)

	// Mesh read path (internal/mesh). Troupe carries the position token
	// or the serving member's position.
	KindSpreadRead     // spread read served by one member (Member = index, Troupe = member's position)
	KindSpreadStale    // member refused a spread read below the token (Troupe = required position)
	KindSpreadEscalate // spread read fell back to the strict replicated read
	KindSpreadWiden    // hot key widened from affinity to whole-troupe rotation
	KindShardMapPush   // newer shard map installed from a Ringmaster push (Troupe = epoch)

	kindCount // sentinel: number of kinds
)

var kindNames = [...]string{
	KindUnknown:       "unknown",
	KindMsgSend:       "msg.send",
	KindSegRetransmit: "msg.retransmit",
	KindAckSend:       "msg.ack",
	KindProbeSend:     "msg.probe",
	KindCrashSuspect:  "msg.crash-suspect",
	KindRTTSample:     "msg.rtt-sample",
	KindDupSegment:    "msg.dup-segment",
	KindMsgDelivered:  "msg.delivered",
	KindCallIssued:    "call.issued",
	KindMemberReply:   "call.member-reply",
	KindCollateDone:   "call.collated",
	KindRebind:        "call.rebind",
	KindCallStart:     "exec.start",
	KindCallDone:      "exec.done",
	KindDupCall:       "exec.dup-call",
	KindReplySent:     "exec.reply-sent",
	KindRegister:      "ring.register",
	KindAddMember:     "ring.add-member",
	KindRemoveMember:  "ring.remove-member",
	KindLookup:        "ring.lookup",
	KindGCRemove:      "ring.gc-remove",
	KindLockAcquire:   "txn.lock-acquire",
	KindLockRelease:   "txn.lock-release",
	KindTxnCommit:     "txn.commit",
	KindTxnAbort:      "txn.abort",
	KindAcceptOrder:   "txn.accept-order",
	KindDeliveryDrop:  "msg.delivery-drop",
	KindBundleSend:    "msg.bundle",
	KindWALAppend:     "wal.append",
	KindWALSnapshot:   "wal.snapshot",
	KindRecover:       "recover",
	KindDeltaRejoin:   "repair.delta-rejoin",
	KindSpreadRead:     "mesh.spread-read",
	KindSpreadStale:    "mesh.spread-stale",
	KindSpreadEscalate: "mesh.spread-escalate",
	KindSpreadWiden:    "mesh.spread-widen",
	KindShardMapPush:   "mesh.map-push",
}

// String returns the stable dotted name of the kind, used in JSONL
// output and log lines.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString inverts String; it returns KindUnknown for
// unrecognized names so traces from newer writers still parse.
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s {
			return Kind(k)
		}
	}
	return KindUnknown
}

// Event is one observation. Fields beyond Kind are populated only as
// relevant to the kind; the zero value of an unused field means "not
// applicable". Node and Inc are stamped by the Local emitter so the
// instrumentation sites never repeat them.
type Event struct {
	// Seq is assigned by the Recorder (or JSONL reader) — a total
	// order over capture, not a protocol property.
	Seq uint64 `json:"seq"`
	// T is the wall-clock emission time, stamped by Local.
	T time.Time `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Node is the emitting process's transport address.
	Node transport.Addr `json:"node"`
	// Inc is the emitting process's incarnation number: a fresh value
	// per pairedmsg.Conn, so a restarted process is distinguishable
	// from its predecessor at the same address.
	Inc uint32 `json:"inc"`
	// Peer is the remote address, for wire-level and reply events.
	Peer transport.Addr `json:"peer,omitzero"`
	// MsgType and CallNum identify a paired-message conversation with
	// Peer (call vs return, and the per-peer call number).
	MsgType uint8  `json:"msgType,omitempty"`
	CallNum uint32 `json:"callNum,omitempty"`
	// ThreadHost, ThreadProc, and Path carry the hierarchical call
	// identity from internal/thread: the originating thread ID plus
	// the call path, the key under which troupe members collate and
	// deduplicate (§4.3).
	ThreadHost uint32   `json:"threadHost,omitempty"`
	ThreadProc uint32   `json:"threadProc,omitempty"`
	Path       []uint32 `json:"path,omitempty"`
	// Troupe, Module, and Proc identify the callee.
	Troupe uint64 `json:"troupe,omitempty"`
	Module uint16 `json:"module,omitempty"`
	Proc   uint16 `json:"proc,omitempty"`
	// Member indexes a troupe member in client-side events; -1 when
	// not applicable (use the pointer-free zero convention: Member is
	// only meaningful for KindMemberReply).
	Member int `json:"member,omitempty"`
	// Attempt counts retries: retransmission passes, rebind attempts.
	Attempt int `json:"attempt,omitempty"`
	// N is a kind-specific count (segments sent, troupe degree,
	// replies collated).
	N int `json:"n,omitempty"`
	// Total is the kind-specific denominator of N where one exists —
	// on msg.ack events, the total segment count of the transfer being
	// acknowledged, so a checker can tell a full (final) ack from a
	// partial one.
	Total int `json:"total,omitempty"`
	// Dur is a kind-specific duration (RTT sample, call latency).
	Dur time.Duration `json:"dur,omitempty"`
	// Err is the error text for failure events, empty on success.
	Err string `json:"err,omitempty"`
	// Detail is a free-form annotation (e.g. broadcast message ID).
	Detail string `json:"detail,omitempty"`
}

// PathKey renders the causal identity (thread ID + call path) as a
// comparable string, the same join key troupe members collate under.
func (e Event) PathKey() string {
	return fmt.Sprintf("%d.%d/%v", e.ThreadHost, e.ThreadProc, e.Path)
}

// KindSet is a bitmask over Kind. kindCount is well under 64, so one
// word covers the whole taxonomy.
type KindSet uint64

// AllKinds has every kind set.
const AllKinds = KindSet(1<<kindCount) - 1

// MaskOf builds a KindSet from individual kinds.
func MaskOf(kinds ...Kind) KindSet {
	var s KindSet
	for _, k := range kinds {
		s |= 1 << k
	}
	return s
}

// Has reports whether k is in the set.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// Sink receives events. Implementations must be safe for concurrent
// use, must not block, and must not call back into the runtime: Emit
// is invoked synchronously, often under component locks.
type Sink interface {
	Emit(Event)
}

// KindFilter is optionally implemented by sinks that only want a
// subset of kinds. Local emitters consult it once at construction and
// then skip filtered-out emissions before the Event is even built, so
// an attached-but-filtered sink costs the same as a disabled one on
// the hot path.
type KindFilter interface {
	TraceKinds() KindSet
}

// kindFiltered wraps a sink with a static kind mask.
type kindFiltered struct {
	sink Sink
	keep KindSet
}

func (f kindFiltered) Emit(e Event) {
	if f.keep.Has(e.Kind) {
		f.sink.Emit(e)
	}
}

func (f kindFiltered) TraceKinds() KindSet { return f.keep }

// FilterKinds narrows sink to the given set of kinds. The Emit-side
// check makes the filter correct with any emitter; emitters that go
// through a Local additionally skip building filtered events at all.
// A nil sink or an empty set yields nil (the disabled state).
func FilterKinds(sink Sink, keep KindSet) Sink {
	if sink == nil || keep == 0 {
		return nil
	}
	return kindFiltered{sink: sink, keep: keep}
}

// sinkKinds is the mask a Local caches for a sink.
func sinkKinds(s Sink) KindSet {
	if f, ok := s.(KindFilter); ok {
		return f.TraceKinds()
	}
	return AllKinds
}

// multi fans one event out to several sinks.
type multi []Sink

func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// TraceKinds is the union of the members' interests, so a Local over a
// Multi only skips kinds no member wants.
func (m multi) TraceKinds() KindSet {
	var s KindSet
	for _, sub := range m {
		s |= sinkKinds(sub)
	}
	return s
}

// Multi combines sinks, dropping nils. It returns nil when no sink
// remains, so Multi(nil, nil) composes into the disabled fast path,
// and returns a lone sink unwrapped.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

// incarnations numbers every Local ever created in this process, so
// events from a restarted Conn at a reused address are distinguishable
// from its predecessor's.
var incarnations atomic.Uint32

// NextIncarnation returns a process-unique incarnation number.
func NextIncarnation() uint32 { return incarnations.Add(1) }

// Local is a per-component emitter: a sink plus the node identity to
// stamp on every event. A nil *Local (or a Local with a nil sink) is
// the disabled state; Enabled and Emit are both nil-receiver safe so
// call sites need no nil checks beyond the Enabled guard.
type Local struct {
	sink Sink
	node transport.Addr
	inc  uint32
	mask KindSet // kinds the sink wants; cached at construction
}

// NewLocal builds an emitter stamping node and inc. It returns nil if
// sink is nil, so the disabled state propagates naturally.
func NewLocal(sink Sink, node transport.Addr, inc uint32) *Local {
	if sink == nil {
		return nil
	}
	return &Local{sink: sink, node: node, inc: inc, mask: sinkKinds(sink)}
}

// Enabled reports whether emissions will reach a sink. Call sites
// must guard with it before building an Event, so the disabled path
// allocates nothing:
//
//	if tr.Enabled() {
//		tr.Emit(trace.Event{Kind: trace.KindMsgSend, ...})
//	}
func (l *Local) Enabled() bool { return l != nil && l.sink != nil }

// EnabledFor reports whether an event of kind k would reach the sink.
// Hot paths guard with it so that a sink interested in other kinds
// costs nothing here — the Event literal is never built:
//
//	if tr.EnabledFor(trace.KindMsgSend) {
//		tr.Emit(trace.Event{Kind: trace.KindMsgSend, ...})
//	}
func (l *Local) EnabledFor(k Kind) bool {
	return l != nil && l.sink != nil && l.mask.Has(k)
}

// Emit stamps the event with time, node, and incarnation, then hands
// it to the sink. Emitting on a disabled Local, or an event the sink's
// kind mask excludes, is a no-op.
func (l *Local) Emit(e Event) {
	if l == nil || l.sink == nil || !l.mask.Has(e.Kind) {
		return
	}
	// A pre-set T is kept: emitters whose events encode timing
	// decisions (e.g. retransmit schedules) stamp the clock reading
	// the decision was made against, so checkers comparing event
	// times see the schedule, not sink-contention jitter.
	if e.T.IsZero() {
		e.T = time.Now()
	}
	e.Node = l.node
	e.Inc = l.inc
	l.sink.Emit(e)
}

// Node returns the stamped address (zero for a disabled Local).
func (l *Local) Node() transport.Addr {
	if l == nil {
		return transport.Addr{}
	}
	return l.node
}

// Inc returns the stamped incarnation (zero for a disabled Local).
func (l *Local) Inc() uint32 {
	if l == nil {
		return 0
	}
	return l.inc
}

// Stamp emits an event on a bare Sink, filling only the timestamp.
// It is for components with no transport identity (the transaction
// subsystem's lock manager and store); such events join traces by
// Detail rather than by node address. A nil sink is a no-op.
func Stamp(s Sink, e Event) {
	if s == nil {
		return
	}
	e.T = time.Now()
	s.Emit(e)
}
