package check

import (
	"strings"
	"testing"
	"time"

	"circus/internal/trace"
	"circus/internal/transport"
)

var (
	nodeA = transport.Addr{Host: 1, Port: 1}
	nodeB = transport.Addr{Host: 2, Port: 1}
)

// seq stamps a slice of events with increasing Seq and T values, the
// way a live recorder would, so tests can list events in order.
func seq(evs ...trace.Event) []trace.Event {
	base := time.Unix(1000, 0)
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
		if evs[i].T.IsZero() {
			evs[i].T = base.Add(time.Duration(i) * 10 * time.Millisecond)
		}
	}
	return evs
}

func wantInvariants(t *testing.T, vs []Violation, want ...string) {
	t.Helper()
	got := make([]string, len(vs))
	for i, v := range vs {
		got[i] = v.Invariant
	}
	if len(got) != len(want) {
		t.Fatalf("violations %v, want invariants %v", Strings(vs), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("violation %d is %q, want %q (%v)", i, got[i], want[i], Strings(vs))
		}
	}
}

func TestCleanTracePasses(t *testing.T) {
	evs := seq(
		trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, MsgType: 0, CallNum: 1},
		trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, MsgType: 0, CallNum: 1},
		trace.Event{Kind: trace.KindCallStart, Node: nodeB, ThreadHost: 1, ThreadProc: 1, Path: []uint32{1}, Module: 3},
		trace.Event{Kind: trace.KindReplySent, Node: nodeB, Peer: nodeA, CallNum: 1},
		trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, MsgType: 0, CallNum: 2},
	)
	wantInvariants(t, Check(evs, Config{RetransmitInterval: 10 * time.Millisecond}))
}

func TestAtMostOnceViolation(t *testing.T) {
	exec := trace.Event{Kind: trace.KindCallStart, Node: nodeB, Inc: 5,
		ThreadHost: 1, ThreadProc: 2, Path: []uint32{1, 1}, Module: 7}
	vs := Check(seq(exec, exec), Config{})
	wantInvariants(t, vs, "at-most-once")

	// A new incarnation of the same node may legally re-execute.
	again := exec
	again.Inc = 6
	wantInvariants(t, Check(seq(exec, again), Config{}))

	// A different call path on the same thread is a different call.
	other := exec
	other.Path = []uint32{1, 2}
	wantInvariants(t, Check(seq(exec, other), Config{}))
}

func TestReplyAfterRequestViolation(t *testing.T) {
	reply := trace.Event{Kind: trace.KindReplySent, Node: nodeB, Peer: nodeA, CallNum: 9}
	wantInvariants(t, Check(seq(reply), Config{}), "reply-after-request")

	// Delivery of a non-call message type does not license the reply.
	vs := Check(seq(
		trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, MsgType: 1, CallNum: 9},
		reply,
	), Config{})
	wantInvariants(t, vs, "reply-after-request")

	// Delivery of the call itself does.
	wantInvariants(t, Check(seq(
		trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, MsgType: 0, CallNum: 9},
		reply,
	), Config{}))
}

func TestMonotoneCallNumsViolation(t *testing.T) {
	send := func(cn uint32) trace.Event {
		return trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, MsgType: 0, CallNum: cn}
	}
	wantInvariants(t, Check(seq(send(3), send(3)), Config{}), "monotone-call-numbers")
	wantInvariants(t, Check(seq(send(3), send(2)), Config{}), "monotone-call-numbers")

	// Unicast and multicast number spaces are disjoint: a small
	// multicast number after a large unicast one is legal.
	wantInvariants(t, Check(seq(send(3), send(0x8000_0001), send(4), send(0x8000_0002)), Config{}))

	// Non-call message types reuse the conversation's number freely.
	ret := send(3)
	ret.MsgType = 1
	wantInvariants(t, Check(seq(send(3), ret), Config{}))
}

func TestDeliverOnceViolation(t *testing.T) {
	del := trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, MsgType: 0, CallNum: 4}
	wantInvariants(t, Check(seq(del, del), Config{}), "deliver-once")

	// Same call number on a different message type is a distinct
	// conversation direction, not a duplicate.
	other := del
	other.MsgType = 1
	wantInvariants(t, Check(seq(del, other), Config{}))
}

func TestFixedRetransmitIntervalViolation(t *testing.T) {
	base := time.Unix(1000, 0)
	retx := func(at time.Duration) trace.Event {
		return trace.Event{Kind: trace.KindSegRetransmit, Node: nodeA, Peer: nodeB,
			MsgType: 0, CallNum: 1, T: base.Add(at)}
	}
	cfg := Config{RetransmitInterval: 10 * time.Millisecond}

	// Gaps of exactly the interval pass.
	wantInvariants(t, Check(seq(retx(0), retx(10*time.Millisecond), retx(20*time.Millisecond)), cfg))
	// A gap below half the interval (the default tolerance) fails.
	vs := Check(seq(retx(0), retx(2*time.Millisecond)), cfg)
	wantInvariants(t, vs, "retransmit-interval")
	// A stricter tolerance catches a 7ms gap that the default forgives.
	mid := seq(retx(0), retx(7*time.Millisecond))
	wantInvariants(t, Check(mid, cfg))
	strict := cfg
	strict.Tolerance = 0.9
	wantInvariants(t, Check(mid, strict), "retransmit-interval")
}

func TestKarnRuleViolation(t *testing.T) {
	base := time.Unix(1000, 0)
	evs := seq(
		trace.Event{Kind: trace.KindSegRetransmit, Node: nodeA, Peer: nodeB, CallNum: 1, T: base},
		trace.Event{Kind: trace.KindRTTSample, Node: nodeA, Peer: nodeB, CallNum: 1, T: base.Add(5 * time.Millisecond)},
	)
	vs := Check(evs, Config{Adaptive: true})
	wantInvariants(t, vs, "karn-rule")

	// A sample from a different, clean transfer is fine.
	clean := seq(
		trace.Event{Kind: trace.KindSegRetransmit, Node: nodeA, Peer: nodeB, CallNum: 1, T: base},
		trace.Event{Kind: trace.KindRTTSample, Node: nodeA, Peer: nodeB, CallNum: 2, T: base.Add(5 * time.Millisecond)},
	)
	wantInvariants(t, Check(clean, Config{Adaptive: true}))
}

func TestBackoffFloorViolation(t *testing.T) {
	base := time.Unix(1000, 0)
	retx := func(at time.Duration) trace.Event {
		return trace.Event{Kind: trace.KindSegRetransmit, Node: nodeA, Peer: nodeB,
			CallNum: 1, T: base.Add(at)}
	}
	cfg := Config{Adaptive: true, MinRTO: 4 * time.Millisecond}
	// 1ms gap < MinRTO/2.
	wantInvariants(t, Check(seq(retx(0), retx(time.Millisecond)), cfg), "backoff-floor")
	wantInvariants(t, Check(seq(retx(0), retx(4*time.Millisecond)), cfg))
}

func TestBackoffMonotoneViolation(t *testing.T) {
	base := time.Unix(1000, 0)
	retx := func(at time.Duration) trace.Event {
		return trace.Event{Kind: trace.KindSegRetransmit, Node: nodeA, Peer: nodeB,
			CallNum: 1, T: base.Add(at)}
	}
	cfg := Config{Adaptive: true}
	// Gaps 20ms then 4ms: shrank below half the previous gap.
	vs := Check(seq(retx(0), retx(20*time.Millisecond), retx(24*time.Millisecond)), cfg)
	wantInvariants(t, vs, "backoff-monotone")
	// Doubling gaps pass; a plateau (gap repeats at the MaxRTO clamp) passes.
	wantInvariants(t, Check(seq(
		retx(0), retx(10*time.Millisecond), retx(30*time.Millisecond),
		retx(50*time.Millisecond), retx(70*time.Millisecond),
	), cfg))
}

func TestAckMonotoneViolation(t *testing.T) {
	ack := func(n int) trace.Event {
		return trace.Event{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA,
			MsgType: 0, CallNum: 1, N: n}
	}
	// A receding cumulative ack is a violation.
	wantInvariants(t, Check(seq(ack(3), ack(2)), Config{}), "ack-monotone")
	// Repeats (retransmission-triggered re-acks) and growth are fine.
	wantInvariants(t, Check(seq(ack(1), ack(1), ack(3)), Config{}))
	// Distinct conversations have independent streams.
	other := ack(1)
	other.CallNum = 2
	wantInvariants(t, Check(seq(ack(3), other), Config{}))
	// So do distinct incarnations of the acking node.
	reinc := ack(1)
	reinc.Inc = 1
	wantInvariants(t, Check(seq(ack(3), reinc), Config{}))
}

func TestAckBeyondSendViolation(t *testing.T) {
	send := trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB,
		MsgType: 0, CallNum: 1, N: 3}
	ack := func(n int) trace.Event {
		return trace.Event{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA,
			MsgType: 0, CallNum: 1, N: n}
	}
	// Acking past the announced segment count is a violation.
	wantInvariants(t, Check(seq(send, ack(4)), Config{}), "ack-beyond-send")
	// Acking up to the count is fine.
	wantInvariants(t, Check(seq(send, ack(3)), Config{}))
	// Without a matching send in the trace, the ack is not judged.
	wantInvariants(t, Check(seq(ack(4)), Config{}))
}

func TestFullAckAfterAssemblyViolation(t *testing.T) {
	fullAck := trace.Event{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA,
		MsgType: 0, CallNum: 1, N: 2, Total: 2}
	delivered := trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA,
		MsgType: 0, CallNum: 1, N: 2}
	// A full ack with no prior assembly is a violation.
	wantInvariants(t, Check(seq(fullAck), Config{}), "full-ack-after-assembly")
	// Assembly first makes it legal.
	wantInvariants(t, Check(seq(delivered, fullAck), Config{}))
	// A partial ack (below the total) needs no assembly. Events
	// without a Total (pre-wire-economy traces) are not judged.
	partial := fullAck
	partial.N, partial.Total = 1, 2
	legacy := fullAck
	legacy.Total = 0
	wantInvariants(t, Check(seq(partial, legacy), Config{}))
}

func TestCheckSortsBySeq(t *testing.T) {
	// Events arriving out of capture order (e.g. merged JSONL shards)
	// are re-sorted before checking: delivery at Seq 1 licenses the
	// reply at Seq 2 even if listed backwards.
	evs := seq(
		trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, MsgType: 0, CallNum: 1},
		trace.Event{Kind: trace.KindReplySent, Node: nodeB, Peer: nodeA, CallNum: 1},
	)
	evs[0], evs[1] = evs[1], evs[0]
	wantInvariants(t, Check(evs, Config{}))
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: "deliver-once", Seq: 12, Msg: "dup"}
	if got := v.String(); !strings.Contains(got, "trace[12]") || !strings.Contains(got, "deliver-once") {
		t.Fatalf("String() = %q", got)
	}
	if s := Strings([]Violation{v}); len(s) != 1 || s[0] != v.String() {
		t.Fatalf("Strings mismatch: %v", s)
	}
}
