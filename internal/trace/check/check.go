// Package check replays a recorded trace offline and verifies the
// protocol invariants the paper claims (§4.2–§4.3): exactly-once
// execution at every troupe member, replies only to fully received
// requests, monotone call numbers per conversation, and retransmit
// schedules that respect the configured backoff bounds (including
// Karn's rule under adaptive retransmission). It runs automatically
// at the end of every chaos campaign and over any JSONL trace.
//
// The event-stream rules themselves live in internal/trace/rules and
// are shared verbatim with the online runtime monitor
// (internal/trace/monitor); this package adds the timing rules that
// need a transfer's whole retransmission history and so only make
// sense offline.
package check

import (
	"fmt"
	"sort"
	"time"

	"circus/internal/trace"
	"circus/internal/trace/rules"
	"circus/internal/transport"
)

// Config describes the protocol parameters the trace was produced
// under, so the timing invariants know the bounds to enforce.
type Config struct {
	// RetransmitInterval is the fixed retransmission interval; used
	// when Adaptive is false. Zero skips the fixed-schedule check.
	RetransmitInterval time.Duration
	// Adaptive selects the adaptive-RTO invariants: non-decreasing
	// backoff within a transfer and Karn's rule (no RTT sample from a
	// transfer that was retransmitted).
	Adaptive bool
	// MinRTO is the adaptive retransmitter's floor. Zero skips the
	// floor check.
	MinRTO time.Duration
	// Tolerance scales the timing checks' slack to absorb timer
	// granularity and scheduling jitter; 0 means the default 0.5
	// (gaps may undershoot their bound by up to half).
	Tolerance float64
}

func (c Config) tol() float64 {
	if c.Tolerance <= 0 {
		return 0.5
	}
	return c.Tolerance
}

// Violation is one invariant breach found in a trace.
type Violation = rules.Violation

// endpoint identifies one process incarnation.
type endpoint struct {
	node transport.Addr
	inc  uint32
}

// conv identifies one paired-message conversation at one endpoint.
type conv struct {
	ep      endpoint
	peer    transport.Addr
	msgType uint8
	callNum uint32
}

// Check replays events (in capture order; re-sorted by Seq
// defensively) and returns every invariant breach found. An empty
// result means the trace is consistent with the protocol.
func Check(events []trace.Event, cfg Config) []Violation {
	evs := make([]trace.Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

	var v []Violation
	eng := rules.New(rules.Options{}, func(rv rules.Violation) {
		v = append(v, rv)
	})
	for _, e := range evs {
		eng.Observe(e)
	}
	v = append(v, checkRetransmitSchedule(evs, cfg)...)
	return v
}

// transferTrace collects the retransmission history of one transfer.
type transferTrace struct {
	retransmits []trace.Event
	sampled     *trace.Event // first RTT sample attributed to the transfer
}

// checkRetransmitSchedule verifies timer discipline per transfer:
//
//   - Fixed mode: successive retransmission passes are spaced at
//     least RetransmitInterval apart (within tolerance).
//   - Adaptive mode: gaps never shrink within a transfer (the RTO
//     only doubles or stays clamped), the first gap respects MinRTO,
//     and Karn's rule holds — a transfer that was ever retransmitted
//     contributes no RTT sample.
func checkRetransmitSchedule(evs []trace.Event, cfg Config) []Violation {
	if cfg.RetransmitInterval == 0 && !cfg.Adaptive {
		return nil
	}
	transfers := make(map[conv]*transferTrace)
	order := []conv{}
	get := func(k conv) *transferTrace {
		t := transfers[k]
		if t == nil {
			t = &transferTrace{}
			transfers[k] = t
			order = append(order, k)
		}
		return t
	}
	for i := range evs {
		e := &evs[i]
		k := conv{endpoint{e.Node, e.Inc}, e.Peer, e.MsgType, e.CallNum}
		switch e.Kind {
		case trace.KindSegRetransmit:
			get(k).retransmits = append(get(k).retransmits, *e)
		case trace.KindRTTSample:
			t := get(k)
			if t.sampled == nil {
				t.sampled = e
			}
		}
	}

	tol := cfg.tol()
	var v []Violation
	for _, k := range order {
		t := transfers[k]
		if len(t.retransmits) == 0 {
			continue
		}
		if cfg.Adaptive && t.sampled != nil {
			v = append(v, Violation{
				Invariant: "karn-rule",
				Seq:       t.sampled.Seq,
				Msg: fmt.Sprintf("%v inc %d took an RTT sample from retransmitted transfer (peer %v type %d call %d)",
					t.sampled.Node, t.sampled.Inc, k.peer, k.msgType, k.callNum),
			})
		}
		var prevGap time.Duration
		for i := 1; i < len(t.retransmits); i++ {
			gap := t.retransmits[i].T.Sub(t.retransmits[i-1].T)
			switch {
			case !cfg.Adaptive:
				if min := time.Duration(float64(cfg.RetransmitInterval) * tol); gap < min {
					v = append(v, Violation{
						Invariant: "retransmit-interval",
						Seq:       t.retransmits[i].Seq,
						Msg: fmt.Sprintf("retransmit gap %v below interval %v (peer %v call %d)",
							gap, cfg.RetransmitInterval, k.peer, k.callNum),
					})
				}
			default:
				if cfg.MinRTO > 0 {
					if min := time.Duration(float64(cfg.MinRTO) * tol); gap < min {
						v = append(v, Violation{
							Invariant: "backoff-floor",
							Seq:       t.retransmits[i].Seq,
							Msg: fmt.Sprintf("retransmit gap %v below MinRTO %v (peer %v call %d)",
								gap, cfg.MinRTO, k.peer, k.callNum),
						})
					}
				}
				if prevGap > 0 {
					if min := time.Duration(float64(prevGap) * tol); gap < min {
						v = append(v, Violation{
							Invariant: "backoff-monotone",
							Seq:       t.retransmits[i].Seq,
							Msg: fmt.Sprintf("retransmit gap shrank %v -> %v (peer %v call %d)",
								prevGap, gap, k.peer, k.callNum),
						})
					}
				}
				prevGap = gap
			}
		}
	}
	return v
}

// Strings formats violations as plain strings, for merging into a
// campaign's violation list.
func Strings(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}
