// Package check replays a recorded trace offline and verifies the
// protocol invariants the paper claims (§4.2–§4.3): exactly-once
// execution at every troupe member, replies only to fully received
// requests, monotone call numbers per conversation, and retransmit
// schedules that respect the configured backoff bounds (including
// Karn's rule under adaptive retransmission). It runs automatically
// at the end of every chaos campaign and over any JSONL trace.
package check

import (
	"fmt"
	"sort"
	"time"

	"circus/internal/trace"
	"circus/internal/transport"
)

// Config describes the protocol parameters the trace was produced
// under, so the timing invariants know the bounds to enforce.
type Config struct {
	// RetransmitInterval is the fixed retransmission interval; used
	// when Adaptive is false. Zero skips the fixed-schedule check.
	RetransmitInterval time.Duration
	// Adaptive selects the adaptive-RTO invariants: non-decreasing
	// backoff within a transfer and Karn's rule (no RTT sample from a
	// transfer that was retransmitted).
	Adaptive bool
	// MinRTO is the adaptive retransmitter's floor. Zero skips the
	// floor check.
	MinRTO time.Duration
	// Tolerance scales the timing checks' slack to absorb timer
	// granularity and scheduling jitter; 0 means the default 0.5
	// (gaps may undershoot their bound by up to half).
	Tolerance float64
}

func (c Config) tol() float64 {
	if c.Tolerance <= 0 {
		return 0.5
	}
	return c.Tolerance
}

// Violation is one invariant breach found in a trace.
type Violation struct {
	// Invariant names the violated invariant.
	Invariant string
	// Seq is the capture sequence number of the offending event.
	Seq uint64
	// Msg explains the breach.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("trace[%d] %s: %s", v.Seq, v.Invariant, v.Msg)
}

// endpoint identifies one process incarnation.
type endpoint struct {
	node transport.Addr
	inc  uint32
}

// conv identifies one paired-message conversation at one endpoint.
type conv struct {
	ep      endpoint
	peer    transport.Addr
	msgType uint8
	callNum uint32
}

// Check replays events (in capture order; re-sorted by Seq
// defensively) and returns every invariant breach found. An empty
// result means the trace is consistent with the protocol.
func Check(events []trace.Event, cfg Config) []Violation {
	evs := make([]trace.Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

	var v []Violation
	v = append(v, checkAtMostOnce(evs)...)
	v = append(v, checkReplyAfterRequest(evs)...)
	v = append(v, checkMonotoneCallNums(evs)...)
	v = append(v, checkDeliverOnce(evs)...)
	v = append(v, checkAckConsistency(evs)...)
	v = append(v, checkRetransmitSchedule(evs, cfg)...)
	return v
}

// checkAckConsistency verifies the acknowledgment stream, including
// acks piggybacked onto data bundles and delayed cumulative acks
// (DESIGN.md "Wire economy"). An ack — however it travelled — must
// never claim more than the receiver actually holds:
//
//   - ack-monotone: within one conversation, the cumulative segment
//     number a receiver acknowledges never decreases. The coalescing
//     layer merges pending acks by maximum and a single flusher
//     serializes emission, so a regression means a stale or forged
//     ack escaped.
//   - ack-beyond-send: the acknowledged segment number never exceeds
//     the segment count the sender announced for that message. (If
//     the trace holds no matching send — e.g. a partial capture — the
//     ack is not judged.)
//   - full-ack-after-assembly: a full ack (N = total segments) is
//     only legal once the receiver has assembled the whole message,
//     witnessed by a prior msg.delivered event for the conversation.
func checkAckConsistency(evs []trace.Event) []Violation {
	type sendKey struct {
		node    transport.Addr
		peer    transport.Addr
		msgType uint8
		callNum uint32
	}
	var v []Violation
	lastAck := make(map[conv]int)
	sentTotal := make(map[sendKey]int)
	assembled := make(map[conv]bool)
	for _, e := range evs {
		switch e.Kind {
		case trace.KindMsgSend:
			k := sendKey{e.Node, e.Peer, e.MsgType, e.CallNum}
			if e.N > sentTotal[k] {
				sentTotal[k] = e.N
			}
		case trace.KindMsgDelivered:
			assembled[conv{endpoint{e.Node, e.Inc}, e.Peer, e.MsgType, e.CallNum}] = true
		case trace.KindAckSend:
			k := conv{endpoint{e.Node, e.Inc}, e.Peer, e.MsgType, e.CallNum}
			if prev, ok := lastAck[k]; ok && e.N < prev {
				v = append(v, Violation{
					Invariant: "ack-monotone",
					Seq:       e.Seq,
					Msg: fmt.Sprintf("%v inc %d acked segment %d after %d (peer %v type %d call %d)",
						e.Node, e.Inc, e.N, prev, e.Peer, e.MsgType, e.CallNum),
				})
			}
			if e.N > lastAck[k] {
				lastAck[k] = e.N
			}
			if total, ok := sentTotal[sendKey{e.Peer, e.Node, e.MsgType, e.CallNum}]; ok && e.N > total {
				v = append(v, Violation{
					Invariant: "ack-beyond-send",
					Seq:       e.Seq,
					Msg: fmt.Sprintf("%v inc %d acked segment %d of a %d-segment message (peer %v type %d call %d)",
						e.Node, e.Inc, e.N, total, e.Peer, e.MsgType, e.CallNum),
				})
			}
			if e.Total > 0 && e.N >= e.Total && !assembled[k] {
				v = append(v, Violation{
					Invariant: "full-ack-after-assembly",
					Seq:       e.Seq,
					Msg: fmt.Sprintf("%v inc %d sent a full ack (%d/%d) before assembling the message (peer %v type %d call %d)",
						e.Node, e.Inc, e.N, e.Total, e.Peer, e.MsgType, e.CallNum),
				})
			}
		}
	}
	return v
}

// checkAtMostOnce: no two executions of the same call (thread ID +
// call path + module) at the same member incarnation (§4.3.4: troupe
// members execute each replicated call exactly once; the trace can
// only witness the at-most-once half).
func checkAtMostOnce(evs []trace.Event) []Violation {
	type key struct {
		ep      endpoint
		pathKey string
		module  uint16
	}
	var v []Violation
	started := make(map[key]uint64)
	for _, e := range evs {
		if e.Kind != trace.KindCallStart {
			continue
		}
		k := key{endpoint{e.Node, e.Inc}, e.PathKey(), e.Module}
		if prev, ok := started[k]; ok {
			v = append(v, Violation{
				Invariant: "at-most-once",
				Seq:       e.Seq,
				Msg: fmt.Sprintf("call %s module %d executed again at %v inc %d (first at trace[%d])",
					e.PathKey(), e.Module, e.Node, e.Inc, prev),
			})
			continue
		}
		started[k] = e.Seq
	}
	return v
}

// checkReplyAfterRequest: a member may only reply to a call it has
// fully received — every reply-sent event must be preceded by the
// delivery of the corresponding call message from that caller.
func checkReplyAfterRequest(evs []trace.Event) []Violation {
	const msgTypeCall = 0
	type key struct {
		ep      endpoint
		peer    transport.Addr
		callNum uint32
	}
	var v []Violation
	delivered := make(map[key]bool)
	for _, e := range evs {
		switch e.Kind {
		case trace.KindMsgDelivered:
			if e.MsgType == msgTypeCall {
				delivered[key{endpoint{e.Node, e.Inc}, e.Peer, e.CallNum}] = true
			}
		case trace.KindReplySent:
			if !delivered[key{endpoint{e.Node, e.Inc}, e.Peer, e.CallNum}] {
				v = append(v, Violation{
					Invariant: "reply-after-request",
					Seq:       e.Seq,
					Msg: fmt.Sprintf("%v inc %d replied to call %d from %v before fully receiving it",
						e.Node, e.Inc, e.CallNum, e.Peer),
				})
			}
		}
	}
	return v
}

// checkMonotoneCallNums: within one incarnation, the call numbers a
// process assigns to new calls to a given peer strictly increase
// (§4.2.3: call numbers order conversations; the replay cache depends
// on never reusing one). Unicast and multicast calls draw from
// disjoint number spaces (top bit), so each is checked separately.
func checkMonotoneCallNums(evs []trace.Event) []Violation {
	const msgTypeCall = 0
	type key struct {
		ep    endpoint
		peer  transport.Addr
		multi bool
	}
	var v []Violation
	last := make(map[key]uint32)
	for _, e := range evs {
		if e.Kind != trace.KindMsgSend || e.MsgType != msgTypeCall {
			continue
		}
		k := key{endpoint{e.Node, e.Inc}, e.Peer, e.CallNum&0x8000_0000 != 0}
		if prev, ok := last[k]; ok && e.CallNum <= prev {
			v = append(v, Violation{
				Invariant: "monotone-call-numbers",
				Seq:       e.Seq,
				Msg: fmt.Sprintf("%v inc %d sent call %d to %v after call %d",
					e.Node, e.Inc, e.CallNum, e.Peer, prev),
			})
		}
		if e.CallNum > last[k] {
			last[k] = e.CallNum
		}
	}
	return v
}

// checkDeliverOnce: the replay cache must suppress duplicate
// messages — a conversation's message is delivered upward at most
// once per receiver incarnation.
func checkDeliverOnce(evs []trace.Event) []Violation {
	var v []Violation
	seen := make(map[conv]uint64)
	for _, e := range evs {
		if e.Kind != trace.KindMsgDelivered {
			continue
		}
		k := conv{endpoint{e.Node, e.Inc}, e.Peer, e.MsgType, e.CallNum}
		if prev, ok := seen[k]; ok {
			v = append(v, Violation{
				Invariant: "deliver-once",
				Seq:       e.Seq,
				Msg: fmt.Sprintf("%v inc %d delivered message (peer %v type %d call %d) again (first at trace[%d])",
					e.Node, e.Inc, e.Peer, e.MsgType, e.CallNum, prev),
			})
			continue
		}
		seen[k] = e.Seq
	}
	return v
}

// transferTrace collects the retransmission history of one transfer.
type transferTrace struct {
	retransmits []trace.Event
	sampled     *trace.Event // first RTT sample attributed to the transfer
}

// checkRetransmitSchedule verifies timer discipline per transfer:
//
//   - Fixed mode: successive retransmission passes are spaced at
//     least RetransmitInterval apart (within tolerance).
//   - Adaptive mode: gaps never shrink within a transfer (the RTO
//     only doubles or stays clamped), the first gap respects MinRTO,
//     and Karn's rule holds — a transfer that was ever retransmitted
//     contributes no RTT sample.
func checkRetransmitSchedule(evs []trace.Event, cfg Config) []Violation {
	if cfg.RetransmitInterval == 0 && !cfg.Adaptive {
		return nil
	}
	transfers := make(map[conv]*transferTrace)
	order := []conv{}
	get := func(k conv) *transferTrace {
		t := transfers[k]
		if t == nil {
			t = &transferTrace{}
			transfers[k] = t
			order = append(order, k)
		}
		return t
	}
	for i := range evs {
		e := &evs[i]
		k := conv{endpoint{e.Node, e.Inc}, e.Peer, e.MsgType, e.CallNum}
		switch e.Kind {
		case trace.KindSegRetransmit:
			get(k).retransmits = append(get(k).retransmits, *e)
		case trace.KindRTTSample:
			t := get(k)
			if t.sampled == nil {
				t.sampled = e
			}
		}
	}

	tol := cfg.tol()
	var v []Violation
	for _, k := range order {
		t := transfers[k]
		if len(t.retransmits) == 0 {
			continue
		}
		if cfg.Adaptive && t.sampled != nil {
			v = append(v, Violation{
				Invariant: "karn-rule",
				Seq:       t.sampled.Seq,
				Msg: fmt.Sprintf("%v inc %d took an RTT sample from retransmitted transfer (peer %v type %d call %d)",
					t.sampled.Node, t.sampled.Inc, k.peer, k.msgType, k.callNum),
			})
		}
		var prevGap time.Duration
		for i := 1; i < len(t.retransmits); i++ {
			gap := t.retransmits[i].T.Sub(t.retransmits[i-1].T)
			switch {
			case !cfg.Adaptive:
				if min := time.Duration(float64(cfg.RetransmitInterval) * tol); gap < min {
					v = append(v, Violation{
						Invariant: "retransmit-interval",
						Seq:       t.retransmits[i].Seq,
						Msg: fmt.Sprintf("retransmit gap %v below interval %v (peer %v call %d)",
							gap, cfg.RetransmitInterval, k.peer, k.callNum),
					})
				}
			default:
				if cfg.MinRTO > 0 {
					if min := time.Duration(float64(cfg.MinRTO) * tol); gap < min {
						v = append(v, Violation{
							Invariant: "backoff-floor",
							Seq:       t.retransmits[i].Seq,
							Msg: fmt.Sprintf("retransmit gap %v below MinRTO %v (peer %v call %d)",
								gap, cfg.MinRTO, k.peer, k.callNum),
						})
					}
				}
				if prevGap > 0 {
					if min := time.Duration(float64(prevGap) * tol); gap < min {
						v = append(v, Violation{
							Invariant: "backoff-monotone",
							Seq:       t.retransmits[i].Seq,
							Msg: fmt.Sprintf("retransmit gap shrank %v -> %v (peer %v call %d)",
								prevGap, gap, k.peer, k.callNum),
						})
					}
				}
				prevGap = gap
			}
		}
	}
	return v
}

// Strings formats violations as plain strings, for merging into a
// campaign's violation list.
func Strings(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}
