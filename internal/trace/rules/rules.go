// Package rules is the single implementation of the protocol's
// event-stream invariants, shared by the offline checker
// (internal/trace/check) and the online runtime monitor
// (internal/trace/monitor) so the two can never drift.
//
// The Engine consumes trace events one at a time and reports each
// breach of:
//
//   - at-most-once: no call (thread ID + call path + module) executes
//     twice at the same member incarnation (§4.3.4),
//   - reply-after-request: a member only replies to a call it has
//     fully received,
//   - monotone-call-numbers: per incarnation and peer, new call
//     numbers strictly increase (unicast and multicast spaces are
//     disjoint),
//   - deliver-once: the replay cache delivers each conversation's
//     message upward at most once per receiver incarnation,
//   - ack-consistency: cumulative acks never recede (ack-monotone),
//     never claim segments the sender did not announce
//     (ack-beyond-send), and a full ack is only legal after the
//     receiver assembled the message (full-ack-after-assembly).
//
// Timing rules (retransmit schedules, Karn's rule) need the whole
// per-transfer history and live only in the offline checker.
//
// Memory. With Options.MaxStates == 0 the engine keeps every key it
// ever sees and is exactly equivalent to the offline checker's
// single-shot maps. With a bound set, each state table holds its
// entries in two generations: when the current generation fills, it
// becomes the old one and the previous old generation is discarded
// (touched entries are promoted, so live conversations survive
// rotation). Discarding state can only ever hide a violation, never
// invent one — with one exception: reply-after-request and
// full-ack-after-assembly flag the *absence* of a delivery record, so
// once a table has discarded anything those two stop flagging absence
// (Engine.strict goes false for them) rather than risk a false
// positive. Completed conversations also release their sender-side
// segment-count records eagerly, the moment the full ack is
// witnessed, so steady-state occupancy tracks in-flight work rather
// than history.
package rules

import (
	"fmt"

	"circus/internal/trace"
	"circus/internal/transport"
)

// msgTypeCall is the paired-message type of a call request; replies
// and returns use other types and are exempt from the call-number and
// reply-licensing rules.
const msgTypeCall = 0

// Violation is one invariant breach found in an event stream.
type Violation struct {
	// Invariant names the violated invariant.
	Invariant string
	// Seq is the capture sequence number of the offending event.
	Seq uint64
	// Msg explains the breach.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("trace[%d] %s: %s", v.Seq, v.Invariant, v.Msg)
}

// Options configures an Engine.
type Options struct {
	// MaxStates bounds the total retained entries across the engine's
	// state tables (approximately: each table keeps at most its share
	// in two generations). 0 means unbounded, which reproduces the
	// offline checker's semantics exactly.
	MaxStates int
}

// Kinds is the set of event kinds the rules consume. A sink wrapping
// an Engine should expose this via trace.KindFilter so emitters skip
// building every other kind.
func Kinds() trace.KindSet {
	return trace.MaskOf(
		trace.KindCallStart,
		trace.KindMsgSend,
		trace.KindMsgDelivered,
		trace.KindAckSend,
		trace.KindReplySent,
	)
}

// endpoint identifies one process incarnation.
type endpoint struct {
	node transport.Addr
	inc  uint32
}

// conv identifies one paired-message conversation at one endpoint.
type conv struct {
	ep      endpoint
	peer    transport.Addr
	msgType uint8
	callNum uint32
}

// sendKey identifies a sender's transfer (the reverse direction of
// the receiver's conv for the same message).
type sendKey struct {
	node    transport.Addr
	peer    transport.Addr
	msgType uint8
	callNum uint32
}

// execKey identifies one execution of a call at one member.
type execKey struct {
	ep      endpoint
	pathKey string
	module  uint16
}

// callNumKey identifies one sender→peer call-number stream.
type callNumKey struct {
	ep    endpoint
	peer  transport.Addr
	multi bool
}

// convState is everything the conversation-level rules track per
// receiver-side conversation.
type convState struct {
	deliveredAt uint64 // Seq of the first msg.delivered, 0 if none yet
	delivered   bool
	lastAck     int
	ackSeen     bool
}

// Engine incrementally checks an event stream. It is not
// goroutine-safe; callers (the monitor) serialize Observe.
type Engine struct {
	report func(Violation)

	started   genMap[execKey, uint64]    // at-most-once
	convs     genMap[conv, *convState]   // deliver-once, ack stream, reply licensing
	lastCall  genMap[callNumKey, uint32] // monotone-call-numbers
	sentTotal genMap[sendKey, int]       // ack-beyond-send
}

// New builds an engine that calls report for every violation, in
// event order. report runs synchronously inside Observe.
func New(opts Options, report func(Violation)) *Engine {
	per := 0
	if opts.MaxStates > 0 {
		// Four tables, two generations each; convs dominates in
		// practice so it gets half the budget.
		per = opts.MaxStates / 8
		if per < 16 {
			per = 16
		}
	}
	return &Engine{
		report:    report,
		started:   newGenMap[execKey, uint64](per),
		convs:     newGenMap[conv, *convState](per * 2),
		lastCall:  newGenMap[callNumKey, uint32](per),
		sentTotal: newGenMap[sendKey, int](per),
	}
}

// States returns the number of retained state entries, for monitor
// introspection and bounded-memory tests.
func (en *Engine) States() int {
	return en.started.len() + en.convs.len() + en.lastCall.len() + en.sentTotal.len()
}

// Observe feeds one event through every rule it participates in.
// Events must arrive in capture (Seq) order for the timing-free rules
// to be meaningful; the offline checker sorts, the monitor observes
// live emission order.
func (en *Engine) Observe(e trace.Event) {
	switch e.Kind {
	case trace.KindCallStart:
		en.observeExec(e)
	case trace.KindMsgSend:
		en.observeSend(e)
	case trace.KindMsgDelivered:
		en.observeDelivered(e)
	case trace.KindAckSend:
		en.observeAck(e)
	case trace.KindReplySent:
		en.observeReply(e)
	}
}

func (en *Engine) observeExec(e trace.Event) {
	k := execKey{endpoint{e.Node, e.Inc}, e.PathKey(), e.Module}
	if prev, ok := en.started.get(k); ok {
		en.report(Violation{
			Invariant: "at-most-once",
			Seq:       e.Seq,
			Msg: fmt.Sprintf("call %s module %d executed again at %v inc %d (first at trace[%d])",
				e.PathKey(), e.Module, e.Node, e.Inc, prev),
		})
		return
	}
	en.started.put(k, e.Seq)
}

func (en *Engine) observeSend(e trace.Event) {
	if e.MsgType == msgTypeCall {
		k := callNumKey{endpoint{e.Node, e.Inc}, e.Peer, e.CallNum&0x8000_0000 != 0}
		prev, ok := en.lastCall.get(k)
		if ok && e.CallNum <= prev {
			en.report(Violation{
				Invariant: "monotone-call-numbers",
				Seq:       e.Seq,
				Msg: fmt.Sprintf("%v inc %d sent call %d to %v after call %d",
					e.Node, e.Inc, e.CallNum, e.Peer, prev),
			})
		}
		if !ok || e.CallNum > prev {
			en.lastCall.put(k, e.CallNum)
		}
	}
	sk := sendKey{e.Node, e.Peer, e.MsgType, e.CallNum}
	if prev, ok := en.sentTotal.get(sk); !ok || e.N > prev {
		en.sentTotal.put(sk, e.N)
	}
}

func (en *Engine) observeDelivered(e trace.Event) {
	k := conv{endpoint{e.Node, e.Inc}, e.Peer, e.MsgType, e.CallNum}
	st, ok := en.convs.get(k)
	if !ok {
		st = &convState{}
		en.convs.put(k, st)
	}
	if st.delivered {
		en.report(Violation{
			Invariant: "deliver-once",
			Seq:       e.Seq,
			Msg: fmt.Sprintf("%v inc %d delivered message (peer %v type %d call %d) again (first at trace[%d])",
				e.Node, e.Inc, e.Peer, e.MsgType, e.CallNum, st.deliveredAt),
		})
		return
	}
	st.delivered = true
	st.deliveredAt = e.Seq
}

func (en *Engine) observeAck(e trace.Event) {
	k := conv{endpoint{e.Node, e.Inc}, e.Peer, e.MsgType, e.CallNum}
	st, ok := en.convs.get(k)
	if !ok {
		st = &convState{}
		en.convs.put(k, st)
	}
	if st.ackSeen && e.N < st.lastAck {
		en.report(Violation{
			Invariant: "ack-monotone",
			Seq:       e.Seq,
			Msg: fmt.Sprintf("%v inc %d acked segment %d after %d (peer %v type %d call %d)",
				e.Node, e.Inc, e.N, st.lastAck, e.Peer, e.MsgType, e.CallNum),
		})
	}
	if !st.ackSeen || e.N > st.lastAck {
		st.lastAck = e.N
	}
	st.ackSeen = true
	reverse := sendKey{e.Peer, e.Node, e.MsgType, e.CallNum}
	if total, ok := en.sentTotal.get(reverse); ok && e.N > total {
		en.report(Violation{
			Invariant: "ack-beyond-send",
			Seq:       e.Seq,
			Msg: fmt.Sprintf("%v inc %d acked segment %d of a %d-segment message (peer %v type %d call %d)",
				e.Node, e.Inc, e.N, total, e.Peer, e.MsgType, e.CallNum),
		})
	}
	if e.Total > 0 && e.N >= e.Total {
		if !st.delivered {
			// Flagging the *absence* of a delivery record is only
			// sound while nothing has ever been discarded from the
			// conversation table.
			if en.convs.strict() {
				en.report(Violation{
					Invariant: "full-ack-after-assembly",
					Seq:       e.Seq,
					Msg: fmt.Sprintf("%v inc %d sent a full ack (%d/%d) before assembling the message (peer %v type %d call %d)",
						e.Node, e.Inc, e.N, e.Total, e.Peer, e.MsgType, e.CallNum),
				})
			}
		} else {
			// Conversation complete: the sender's segment-count record
			// can no longer matter, release it eagerly. The convState
			// itself stays (bounded generationally) so retransmitted
			// full acks and late duplicates are still judged.
			en.sentTotal.delete(reverse)
		}
	}
}

func (en *Engine) observeReply(e trace.Event) {
	// The licensing delivery is the call-typed conversation with the
	// same caller and call number at this member.
	k := conv{endpoint{e.Node, e.Inc}, e.Peer, msgTypeCall, e.CallNum}
	st, ok := en.convs.get(k)
	if ok && st.delivered {
		return
	}
	if !en.convs.strict() {
		return // the delivery record may have been discarded
	}
	en.report(Violation{
		Invariant: "reply-after-request",
		Seq:       e.Seq,
		Msg: fmt.Sprintf("%v inc %d replied to call %d from %v before fully receiving it",
			e.Node, e.Inc, e.CallNum, e.Peer),
	})
}
