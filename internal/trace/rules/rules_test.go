package rules

import (
	"fmt"
	"testing"

	"circus/internal/trace"
	"circus/internal/transport"
)

var (
	nodeA = transport.Addr{Host: 1, Port: 1}
	nodeB = transport.Addr{Host: 2, Port: 1}
)

func collect(opts Options) (*Engine, *[]Violation) {
	var vs []Violation
	en := New(opts, func(v Violation) { vs = append(vs, v) })
	return en, &vs
}

func feed(en *Engine, evs ...trace.Event) {
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
		en.Observe(evs[i])
	}
}

func TestEngineCleanStream(t *testing.T) {
	en, vs := collect(Options{})
	feed(en,
		trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: 1, N: 1},
		trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, CallNum: 1, N: 1},
		trace.Event{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: 1, N: 1, Total: 1},
		trace.Event{Kind: trace.KindCallStart, Node: nodeB, ThreadHost: 1, ThreadProc: 1, Path: []uint32{1}, Module: 3},
		trace.Event{Kind: trace.KindReplySent, Node: nodeB, Peer: nodeA, CallNum: 1},
		trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: 2, N: 1},
	)
	if len(*vs) != 0 {
		t.Fatalf("clean stream produced %v", *vs)
	}
}

func TestEngineDetectsEachRule(t *testing.T) {
	exec := trace.Event{Kind: trace.KindCallStart, Node: nodeB, Inc: 5,
		ThreadHost: 1, ThreadProc: 2, Path: []uint32{1, 1}, Module: 7}
	del := trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, CallNum: 4}
	cases := []struct {
		name string
		evs  []trace.Event
		want string
	}{
		{"at-most-once", []trace.Event{exec, exec}, "at-most-once"},
		{"deliver-once", []trace.Event{del, del}, "deliver-once"},
		{"reply-after-request",
			[]trace.Event{{Kind: trace.KindReplySent, Node: nodeB, Peer: nodeA, CallNum: 9}},
			"reply-after-request"},
		{"monotone-call-numbers", []trace.Event{
			{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: 3},
			{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: 3},
		}, "monotone-call-numbers"},
		{"ack-monotone", []trace.Event{
			{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: 1, N: 3},
			{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: 1, N: 2},
		}, "ack-monotone"},
		{"ack-beyond-send", []trace.Event{
			{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: 1, N: 3},
			{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: 1, N: 4},
		}, "ack-beyond-send"},
		{"full-ack-after-assembly", []trace.Event{
			{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: 1, N: 2, Total: 2},
		}, "full-ack-after-assembly"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			en, vs := collect(Options{})
			feed(en, tc.evs...)
			if len(*vs) != 1 || (*vs)[0].Invariant != tc.want {
				t.Fatalf("got %v, want one %q", *vs, tc.want)
			}
		})
	}
}

func TestEagerEvictionOnCompletion(t *testing.T) {
	en, vs := collect(Options{})
	feed(en,
		trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: 1, N: 2},
		trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, CallNum: 1, N: 2},
		trace.Event{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: 1, N: 2, Total: 2},
	)
	if len(*vs) != 0 {
		t.Fatalf("unexpected violations: %v", *vs)
	}
	// The sender's segment-count record is gone; the conversation
	// state (one conv entry, one call-number entry) remains for late
	// duplicates.
	if got := en.States(); got != 2 {
		t.Fatalf("States() = %d after completion, want 2 (conv + call-number)", got)
	}
	// A retransmitted full ack after eviction is still legal.
	en.Observe(trace.Event{Seq: 4, Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: 1, N: 2, Total: 2})
	if len(*vs) != 0 {
		t.Fatalf("re-acked completion flagged: %v", *vs)
	}
}

func TestBoundedStateNeverFalsePositive(t *testing.T) {
	// Tiny budget, far more identities than it can hold: the engine
	// must stay within bounds and report nothing on a clean stream,
	// even though most state has been discarded along the way.
	en, vs := collect(Options{MaxStates: 256})
	const convs = 20000
	for i := 0; i < convs; i++ {
		cn := uint32(i + 1)
		feed2 := []trace.Event{
			{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: cn, N: 1},
			{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, CallNum: cn, N: 1},
			{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: cn, N: 1, Total: 1},
			{Kind: trace.KindCallStart, Node: nodeB, ThreadHost: 1, ThreadProc: 1, Path: []uint32{cn}, Module: 3},
			{Kind: trace.KindReplySent, Node: nodeB, Peer: nodeA, CallNum: cn},
		}
		for j := range feed2 {
			feed2[j].Seq = uint64(i*5 + j + 1)
			en.Observe(feed2[j])
		}
	}
	if len(*vs) != 0 {
		t.Fatalf("clean bounded stream produced %v", *vs)
	}
	if got := en.States(); got > 4*256 {
		t.Fatalf("States() = %d, want bounded near the budget", got)
	}
	// Violations among retained (recent) identities still fire.
	last := trace.Event{Seq: convs*5 + 1, Kind: trace.KindCallStart, Node: nodeB,
		ThreadHost: 1, ThreadProc: 1, Path: []uint32{convs}, Module: 3}
	en.Observe(last)
	if len(*vs) != 1 || (*vs)[0].Invariant != "at-most-once" {
		t.Fatalf("recent duplicate not flagged: %v", *vs)
	}
}

func TestGenMapRotationAndPromotion(t *testing.T) {
	g := newGenMap[int, int](4)
	for i := 0; i < 4; i++ {
		g.put(i, i)
	}
	if !g.strict() {
		t.Fatal("no drop yet, strict should hold")
	}
	g.put(4, 4) // rotates: {0..3} -> old, cur = {4}
	if !g.strict() {
		t.Fatal("first rotation discards nothing")
	}
	// Touch 0 so it promotes; fill cur to force a second rotation.
	if v, ok := g.get(0); !ok || v != 0 {
		t.Fatal("old-generation entry lost")
	}
	for i := 5; i < 9; i++ {
		g.put(i, i)
	}
	// 1..3 were in the discarded generation.
	if _, ok := g.get(1); ok {
		t.Fatal("discarded entry still visible")
	}
	if v, ok := g.get(0); !ok || v != 0 {
		t.Fatal("promoted entry aged out")
	}
	if g.strict() {
		t.Fatal("strict must drop after a discarding rotation")
	}
	if g.len() > 8 {
		t.Fatalf("len %d exceeds two generations", g.len())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: "deliver-once", Seq: 12, Msg: "dup"}
	want := fmt.Sprintf("trace[%d] %s: %s", v.Seq, v.Invariant, v.Msg)
	if v.String() != want {
		t.Fatalf("String() = %q", v.String())
	}
}
