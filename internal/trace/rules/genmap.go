package rules

// genMap is a two-generation bounded map. put fills the current
// generation; when it reaches the per-generation cap the current
// generation is demoted to old and the previous old generation is
// discarded. get consults both generations and promotes hits into the
// current one, so entries that are still being touched survive
// rotation indefinitely — only idle state ages out. max == 0 disables
// rotation entirely (offline-checker semantics).
type genMap[K comparable, V any] struct {
	max     int
	dropped bool // a rotation has discarded a non-empty generation
	cur     map[K]V
	old     map[K]V
}

func newGenMap[K comparable, V any](max int) genMap[K, V] {
	return genMap[K, V]{max: max, cur: make(map[K]V)}
}

func (g *genMap[K, V]) get(k K) (V, bool) {
	if v, ok := g.cur[k]; ok {
		return v, true
	}
	if g.old != nil {
		if v, ok := g.old[k]; ok {
			delete(g.old, k)
			g.cur[k] = v // promotion counts against the current cap at the next put
			return v, true
		}
	}
	var zero V
	return zero, false
}

func (g *genMap[K, V]) put(k K, v V) {
	if g.max > 0 && len(g.cur) >= g.max {
		if _, exists := g.cur[k]; !exists {
			if len(g.old) > 0 {
				g.dropped = true
			}
			g.old = g.cur
			g.cur = make(map[K]V, g.max)
		}
	}
	g.cur[k] = v
}

func (g *genMap[K, V]) delete(k K) {
	delete(g.cur, k)
	if g.old != nil {
		delete(g.old, k)
	}
}

func (g *genMap[K, V]) len() int { return len(g.cur) + len(g.old) }

// strict reports that no entry has ever been discarded, so the
// absence of a key proves the corresponding event was never observed.
func (g *genMap[K, V]) strict() bool { return !g.dropped }
