package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"circus/internal/transport"
)

// latencyBuckets is the number of power-of-two call-latency buckets:
// bucket i covers [2^i, 2^(i+1)) microseconds, with the final bucket
// absorbing everything slower (~34s and up).
const latencyBuckets = 26

// Metrics is a sink that aggregates instead of recording: per-kind
// event counters, per-peer wire traffic, per-troupe call counts, and
// a call-latency histogram fed by collation decisions. All hot-path
// updates are atomic adds; the per-peer and per-troupe maps take a
// mutex only on first sight of a key.
type Metrics struct {
	kinds [kindCount]atomic.Int64

	latency [latencyBuckets]atomic.Int64
	calls   atomic.Int64 // collated calls, = sum of latency buckets
	callErr atomic.Int64 // collations that returned an error

	violations atomic.Int64 // monitor-detected invariant breaches

	mu        sync.Mutex
	peers     map[transport.Addr]*PeerCounters
	troupes   map[uint64]*atomic.Int64
	violRules map[string]*atomic.Int64
}

// PeerCounters aggregates wire-level traffic with one peer.
type PeerCounters struct {
	MsgsSent      atomic.Int64 // messages handed to the transport
	Retransmits   atomic.Int64 // segments resent
	AcksSent      atomic.Int64
	ProbesSent    atomic.Int64
	Suspects      atomic.Int64 // times the peer was declared down
	Delivered     atomic.Int64 // messages received fully from the peer
	DupSegments   atomic.Int64
	DeliveryDrops atomic.Int64 // reassembled messages the full incoming queue refused
	SpreadReads   atomic.Int64 // spread reads this peer served alone
}

// NewMetrics returns an empty aggregator.
func NewMetrics() *Metrics {
	return &Metrics{
		peers:     make(map[transport.Addr]*PeerCounters),
		troupes:   make(map[uint64]*atomic.Int64),
		violRules: make(map[string]*atomic.Int64),
	}
}

// ObserveViolation counts one runtime-monitor invariant breach against
// the named invariant. The monitor calls this from its violation
// callback (see monitor.Options.Metrics), so a metrics dashboard shows
// protocol-correctness breaches beside the traffic they occurred in.
func (m *Metrics) ObserveViolation(invariant string) {
	m.violations.Add(1)
	m.mu.Lock()
	c := m.violRules[invariant]
	if c == nil {
		c = &atomic.Int64{}
		m.violRules[invariant] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// Violations returns the total monitor-breach count.
func (m *Metrics) Violations() int64 { return m.violations.Load() }

func (m *Metrics) peer(a transport.Addr) *PeerCounters {
	m.mu.Lock()
	p := m.peers[a]
	if p == nil {
		p = &PeerCounters{}
		m.peers[a] = p
	}
	m.mu.Unlock()
	return p
}

// Emit aggregates one event.
func (m *Metrics) Emit(e Event) {
	if int(e.Kind) < len(m.kinds) {
		m.kinds[e.Kind].Add(1)
	}
	switch e.Kind {
	case KindMsgSend:
		m.peer(e.Peer).MsgsSent.Add(1)
	case KindSegRetransmit:
		m.peer(e.Peer).Retransmits.Add(int64(e.N))
	case KindAckSend:
		m.peer(e.Peer).AcksSent.Add(1)
	case KindProbeSend:
		m.peer(e.Peer).ProbesSent.Add(1)
	case KindCrashSuspect:
		if !e.Peer.IsZero() {
			m.peer(e.Peer).Suspects.Add(1)
		}
	case KindMsgDelivered:
		m.peer(e.Peer).Delivered.Add(1)
	case KindDupSegment:
		m.peer(e.Peer).DupSegments.Add(1)
	case KindDeliveryDrop:
		m.peer(e.Peer).DeliveryDrops.Add(1)
	case KindSpreadRead:
		if !e.Peer.IsZero() {
			m.peer(e.Peer).SpreadReads.Add(1)
		}
	case KindCollateDone:
		m.calls.Add(1)
		if e.Err != "" {
			m.callErr.Add(1)
		}
		m.latency[latencyBucket(e.Dur)].Add(1)
		if e.Troupe != 0 {
			m.mu.Lock()
			c := m.troupes[e.Troupe]
			if c == nil {
				c = &atomic.Int64{}
				m.troupes[e.Troupe] = c
			}
			m.mu.Unlock()
			c.Add(1)
		}
	}
}

func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < latencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// LatencyBucketLow returns the inclusive lower bound of histogram
// bucket i.
func LatencyBucketLow(i int) time.Duration {
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Snapshot is a point-in-time copy of the aggregates.
type Snapshot struct {
	// Kinds maps each event kind to its count (zero entries omitted).
	Kinds map[Kind]int64
	// Peers maps each peer address to its wire counters.
	Peers map[transport.Addr]PeerSnapshot
	// Troupes maps troupe ID to collated-call count.
	Troupes map[uint64]int64
	// Calls and CallErrors count collation decisions and failures.
	Calls      int64
	CallErrors int64
	// Violations counts runtime-monitor invariant breaches, total and
	// per invariant (zero entries omitted).
	Violations     int64
	ViolationRules map[string]int64
	// Latency is the call-latency histogram: Latency[i] counts calls
	// in [LatencyBucketLow(i), LatencyBucketLow(i+1)).
	Latency [latencyBuckets]int64
}

// PeerSnapshot is the plain-value form of PeerCounters.
type PeerSnapshot struct {
	MsgsSent      int64
	Retransmits   int64
	AcksSent      int64
	ProbesSent    int64
	Suspects      int64
	Delivered     int64
	DupSegments   int64
	DeliveryDrops int64
	SpreadReads   int64
}

// Snapshot copies the current aggregates.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Kinds:          make(map[Kind]int64),
		Peers:          make(map[transport.Addr]PeerSnapshot),
		Troupes:        make(map[uint64]int64),
		ViolationRules: make(map[string]int64),
		Calls:          m.calls.Load(),
		CallErrors:     m.callErr.Load(),
		Violations:     m.violations.Load(),
	}
	for k := range m.kinds {
		if v := m.kinds[k].Load(); v != 0 {
			s.Kinds[Kind(k)] = v
		}
	}
	for i := range m.latency {
		s.Latency[i] = m.latency[i].Load()
	}
	m.mu.Lock()
	for a, p := range m.peers {
		s.Peers[a] = PeerSnapshot{
			MsgsSent:      p.MsgsSent.Load(),
			Retransmits:   p.Retransmits.Load(),
			AcksSent:      p.AcksSent.Load(),
			ProbesSent:    p.ProbesSent.Load(),
			Suspects:      p.Suspects.Load(),
			Delivered:     p.Delivered.Load(),
			DupSegments:   p.DupSegments.Load(),
			DeliveryDrops: p.DeliveryDrops.Load(),
			SpreadReads:   p.SpreadReads.Load(),
		}
	}
	for id, c := range m.troupes {
		s.Troupes[id] = c.Load()
	}
	for inv, c := range m.violRules {
		if v := c.Load(); v != 0 {
			s.ViolationRules[inv] = v
		}
	}
	m.mu.Unlock()
	return s
}

// Count returns the count for one kind.
func (m *Metrics) Count(k Kind) int64 {
	if int(k) >= len(m.kinds) {
		return 0
	}
	return m.kinds[k].Load()
}
