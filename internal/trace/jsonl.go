package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"circus/internal/transport"
)

// jsonEvent is the wire form of an Event: Kind as its stable dotted
// name, Addr structs flattened to "host:port" integers, durations in
// nanoseconds. One object per line.
type jsonEvent struct {
	Seq        uint64   `json:"seq,omitempty"`
	T          int64    `json:"t"` // UnixNano
	Kind       string   `json:"kind"`
	NodeHost   uint32   `json:"node,omitempty"`
	NodePort   uint16   `json:"nodePort,omitempty"`
	Inc        uint32   `json:"inc,omitempty"`
	PeerHost   uint32   `json:"peer,omitempty"`
	PeerPort   uint16   `json:"peerPort,omitempty"`
	MsgType    uint8    `json:"msgType,omitempty"`
	CallNum    uint32   `json:"callNum,omitempty"`
	ThreadHost uint32   `json:"threadHost,omitempty"`
	ThreadProc uint32   `json:"threadProc,omitempty"`
	Path       []uint32 `json:"path,omitempty"`
	Troupe     uint64   `json:"troupe,omitempty"`
	Module     uint16   `json:"module,omitempty"`
	Proc       uint16   `json:"proc,omitempty"`
	Member     int      `json:"member,omitempty"`
	Attempt    int      `json:"attempt,omitempty"`
	N          int      `json:"n,omitempty"`
	Total      int      `json:"total,omitempty"`
	DurNS      int64    `json:"durNs,omitempty"`
	Err        string   `json:"err,omitempty"`
	Detail     string   `json:"detail,omitempty"`
}

func toJSON(e Event) jsonEvent {
	return jsonEvent{
		Seq: e.Seq, T: e.T.UnixNano(), Kind: e.Kind.String(),
		NodeHost: e.Node.Host, NodePort: e.Node.Port, Inc: e.Inc,
		PeerHost: e.Peer.Host, PeerPort: e.Peer.Port,
		MsgType: e.MsgType, CallNum: e.CallNum,
		ThreadHost: e.ThreadHost, ThreadProc: e.ThreadProc, Path: e.Path,
		Troupe: e.Troupe, Module: e.Module, Proc: e.Proc,
		Member: e.Member, Attempt: e.Attempt, N: e.N, Total: e.Total,
		DurNS: int64(e.Dur), Err: e.Err, Detail: e.Detail,
	}
}

func fromJSON(j jsonEvent) Event {
	return Event{
		Seq: j.Seq, T: time.Unix(0, j.T), Kind: KindFromString(j.Kind),
		Node: transport.Addr{Host: j.NodeHost, Port: j.NodePort}, Inc: j.Inc,
		Peer:    transport.Addr{Host: j.PeerHost, Port: j.PeerPort},
		MsgType: j.MsgType, CallNum: j.CallNum,
		ThreadHost: j.ThreadHost, ThreadProc: j.ThreadProc, Path: j.Path,
		Troupe: j.Troupe, Module: j.Module, Proc: j.Proc,
		Member: j.Member, Attempt: j.Attempt, N: j.N, Total: j.Total,
		Dur: time.Duration(j.DurNS), Err: j.Err, Detail: j.Detail,
	}
}

// JSONL is a sink that streams events to a writer as JSON Lines, one
// event per line, buffered. Call Flush (or Close) before reading the
// output. Safe for concurrent emitters.
type JSONL struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	c    io.Closer
	next uint64
	err  error
}

// NewJSONL wraps w. If w is also an io.Closer, Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit encodes one event as a line. Encoding errors are sticky and
// reported by Flush/Close; Emit itself never fails, as sinks must not
// disturb the runtime.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.next++
	e.Seq = j.next
	b, err := json.Marshal(toJSON(e))
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.bw.Write(b); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first sticky error.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and closes the underlying writer if it is closable.
func (j *JSONL) Close() error {
	err := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL parses a JSONL trace back into events, re-sequencing them
// in file order so a trace written by multiple emitters still has a
// total capture order. Malformed lines abort with an error naming the
// line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var j jsonEvent
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		e := fromJSON(j)
		e.Seq = uint64(len(out) + 1)
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", line, err)
	}
	return out, nil
}
