package trace

import (
	"sync"
	"time"
)

// Recorder is an in-memory sink for tests: it retains every event in
// emission order and lets tests block until an event matching a
// predicate appears, replacing sleep-based waits with waits on the
// actual protocol occurrence.
//
// Emit is called synchronously from inside the runtime, often under
// component locks, so the recorder only appends under its own mutex
// and signals waiters via channel close — it never calls back out.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	waiters map[*waiter]struct{}
}

type waiter struct {
	pred  func(Event) bool
	need  int // remaining matches before firing
	last  Event
	ready chan struct{}
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{waiters: make(map[*waiter]struct{})}
}

// Emit appends the event, assigns its capture sequence number, and
// wakes any waiter whose predicate it satisfies.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	e.Seq = uint64(len(r.events) + 1)
	r.events = append(r.events, e)
	for w := range r.waiters {
		if w.pred(e) {
			w.need--
			w.last = e
			if w.need <= 0 {
				close(w.ready)
				delete(r.waiters, w)
			}
		}
	}
	r.mu.Unlock()
}

// Events returns a snapshot of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Count returns how many recorded events satisfy pred.
func (r *Recorder) Count(pred func(Event) bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if pred(e) {
			n++
		}
	}
	return n
}

// Wait blocks until an event satisfying pred has been recorded (past
// events count) or the timeout elapses. It returns the first matching
// event and whether one arrived in time.
func (r *Recorder) Wait(timeout time.Duration, pred func(Event) bool) (Event, bool) {
	return r.WaitN(timeout, 1, pred)
}

// WaitN blocks until at least n events satisfying pred have been
// recorded, counting events already present. It returns the n-th
// matching event and whether the count was reached in time.
func (r *Recorder) WaitN(timeout time.Duration, n int, pred func(Event) bool) (Event, bool) {
	r.mu.Lock()
	seen := 0
	var nth Event
	for _, e := range r.events {
		if pred(e) {
			seen++
			if seen == n {
				nth = e
				break
			}
		}
	}
	if seen >= n {
		r.mu.Unlock()
		return nth, true
	}
	w := &waiter{pred: pred, need: n - seen, ready: make(chan struct{})}
	r.waiters[w] = struct{}{}
	r.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		r.mu.Lock()
		last := w.last
		r.mu.Unlock()
		return last, true
	case <-timer.C:
		r.mu.Lock()
		delete(r.waiters, w)
		// The waiter may have fired between the timeout and the lock.
		select {
		case <-w.ready:
			last := w.last
			r.mu.Unlock()
			return last, true
		default:
		}
		r.mu.Unlock()
		return Event{}, false
	}
}

// ByKind is a predicate matching a single kind, the common Wait
// argument.
func ByKind(k Kind) func(Event) bool {
	return func(e Event) bool { return e.Kind == k }
}
