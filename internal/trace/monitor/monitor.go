// Package monitor is the online half of the protocol checker: a
// trace.Sink that feeds the shared rule engine (internal/trace/rules)
// incrementally, as events are emitted, so invariant breaches surface
// the moment they happen instead of at quiescence.
//
// Designed to run in production paths:
//
//   - Disabled is free. The monitor is just a sink; when it is not
//     attached, the emitters' EnabledFor guards never build an event
//     (0 allocs, two loads and a branch per site). When it is
//     attached, it implements trace.KindFilter so only the five rule
//     kinds are ever built.
//   - Sampling is by identity, not by event: a 1-in-N SampleRate
//     keeps or drops whole call paths and whole conversations (hashed
//     before any lock), so every rule still sees a complete story for
//     the identities it watches. Conversation hashes are symmetric in
//     the endpoint pair — the sender's msg.send and the receiver's
//     ack/delivered events of one exchange always sample together.
//   - Memory is bounded. Rule state lives in two-generation tables
//     (see rules.Options.MaxStates); completed conversations release
//     eagerly, idle identities age out. Dropping state can hide a
//     violation, never invent one.
//
// The monitor serializes rule evaluation behind one mutex; at
// sampling rates like 1/64 the uncontended fast path is a hash and a
// branch.
package monitor

import (
	"sync"
	"sync/atomic"

	"circus/internal/trace"
	"circus/internal/trace/rules"
	"circus/internal/transport"
)

// DefaultMaxStates bounds rule-engine state when Options.MaxStates is
// zero: roughly a few MB at full occupancy, far more identities than
// are ever concurrently in flight.
const DefaultMaxStates = 1 << 16

// DefaultMaxViolations bounds the retained violation list.
const DefaultMaxViolations = 256

// Options configures a Monitor.
type Options struct {
	// SampleRate keeps 1 in SampleRate call paths / conversations;
	// values <= 1 keep everything.
	SampleRate int
	// MaxStates bounds retained rule state (0 = DefaultMaxStates;
	// negative = unbounded, the offline checker's exact semantics).
	MaxStates int
	// MaxViolations bounds the retained violation list (0 =
	// DefaultMaxViolations). The total count is always exact.
	MaxViolations int
	// OnViolation, if set, is called synchronously for every breach —
	// from inside Emit, often under emitter locks, so it must be
	// cheap, must not block, and must not call back into the runtime.
	OnViolation func(rules.Violation)
	// Metrics, if set, receives every breach as a per-invariant
	// counter (trace.Metrics.ObserveViolation), so a node's metrics
	// snapshot reports protocol-correctness violations alongside its
	// traffic aggregates. Composes with OnViolation.
	Metrics *trace.Metrics
}

// Stats is a point-in-time snapshot of monitor activity.
type Stats struct {
	Events     uint64 // events offered to the monitor
	Sampled    uint64 // events that passed the sampling hash
	Violations uint64 // total breaches reported (retained list may be shorter)
	States     int    // retained rule-state entries
}

// Monitor is an online protocol checker. Attach it wherever a
// trace.Sink goes: bench clusters, chaos campaigns, or a production
// node's WithTrace option.
type Monitor struct {
	rate    int
	maxViol int
	onViol  func(rules.Violation)
	metrics *trace.Metrics

	events  atomic.Uint64
	sampled atomic.Uint64
	viols   atomic.Uint64

	mu   sync.Mutex
	eng  *rules.Engine
	kept []rules.Violation
}

// New builds a monitor.
func New(opts Options) *Monitor {
	maxStates := opts.MaxStates
	switch {
	case maxStates == 0:
		maxStates = DefaultMaxStates
	case maxStates < 0:
		maxStates = 0 // unbounded for the rules engine
	}
	maxViol := opts.MaxViolations
	if maxViol <= 0 {
		maxViol = DefaultMaxViolations
	}
	m := &Monitor{rate: opts.SampleRate, maxViol: maxViol,
		onViol: opts.OnViolation, metrics: opts.Metrics}
	m.eng = rules.New(rules.Options{MaxStates: maxStates}, m.record)
	return m
}

// TraceKinds narrows emission to the kinds the rules consume, so a
// Local emitter skips building everything else (trace.KindFilter).
func (m *Monitor) TraceKinds() trace.KindSet { return rules.Kinds() }

// Emit implements trace.Sink. Safe for concurrent use.
func (m *Monitor) Emit(e trace.Event) {
	m.events.Add(1)
	if !m.keep(&e) {
		return
	}
	m.sampled.Add(1)
	m.mu.Lock()
	if e.Seq == 0 {
		// Live emission carries no recorder sequence; stamp arrival
		// order so violation reports still locate the event.
		e.Seq = m.events.Load()
	}
	m.eng.Observe(e)
	m.mu.Unlock()
}

// record is the rules engine's report callback; runs under m.mu.
func (m *Monitor) record(v rules.Violation) {
	m.viols.Add(1)
	if len(m.kept) < m.maxViol {
		m.kept = append(m.kept, v)
	}
	if m.metrics != nil {
		m.metrics.ObserveViolation(v.Invariant)
	}
	if m.onViol != nil {
		m.onViol(v)
	}
}

// Violations returns the retained breaches (up to MaxViolations), in
// detection order.
func (m *Monitor) Violations() []rules.Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]rules.Violation, len(m.kept))
	copy(out, m.kept)
	return out
}

// Stats snapshots the counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	states := m.eng.States()
	m.mu.Unlock()
	return Stats{
		Events:     m.events.Load(),
		Sampled:    m.sampled.Load(),
		Violations: m.viols.Load(),
		States:     states,
	}
}

// keep decides sampling before any lock is taken. Identity-based:
// exec events hash their call path, wire events hash the unordered
// endpoint pair plus call number (msgType excluded so both directions
// of an exchange travel together).
func (m *Monitor) keep(e *trace.Event) bool {
	rate := m.rate
	if rate <= 1 {
		return true
	}
	var h uint64
	if e.Kind == trace.KindCallStart {
		h = hashU32(fnvOffset, e.ThreadHost)
		h = hashU32(h, e.ThreadProc)
		for _, p := range e.Path {
			h = hashU32(h, p)
		}
	} else {
		a, b := addrKey(e.Node), addrKey(e.Peer)
		if a > b {
			a, b = b, a
		}
		h = hashU64(fnvOffset, a)
		h = hashU64(h, b)
		h = hashU32(h, e.CallNum)
	}
	return h%uint64(rate) == 0
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashU32(h uint64, v uint32) uint64 {
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

func hashU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

func addrKey(a transport.Addr) uint64 {
	return uint64(a.Host)<<16 | uint64(a.Port)
}
