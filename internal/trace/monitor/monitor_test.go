package monitor

import (
	"math/rand"
	"testing"

	"circus/internal/trace"
	"circus/internal/trace/rules"
	"circus/internal/transport"
)

var (
	nodeA = transport.Addr{Host: 1, Port: 1}
	nodeB = transport.Addr{Host: 2, Port: 1}
)

// exchange emits one clean request/ack conversation plus its
// execution, all under call number cn.
func exchange(m *Monitor, cn uint32) {
	evs := []trace.Event{
		{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: cn, N: 1},
		{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, CallNum: cn, N: 1},
		{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: cn, N: 1, Total: 1},
		{Kind: trace.KindCallStart, Node: nodeB, ThreadHost: 1, ThreadProc: 1, Path: []uint32{cn}, Module: 3},
		{Kind: trace.KindReplySent, Node: nodeB, Peer: nodeA, CallNum: cn},
	}
	for _, e := range evs {
		m.Emit(e)
	}
}

func TestMonitorDetectsLiveViolation(t *testing.T) {
	var live []rules.Violation
	m := New(Options{OnViolation: func(v rules.Violation) { live = append(live, v) }})
	exchange(m, 1)
	// A second execution of the same call path is the planted breach.
	m.Emit(trace.Event{Kind: trace.KindCallStart, Node: nodeB,
		ThreadHost: 1, ThreadProc: 1, Path: []uint32{1}, Module: 3})
	if len(live) != 1 || live[0].Invariant != "at-most-once" {
		t.Fatalf("OnViolation got %v", live)
	}
	vs := m.Violations()
	if len(vs) != 1 || vs[0].Invariant != "at-most-once" {
		t.Fatalf("Violations() = %v", vs)
	}
	if st := m.Stats(); st.Violations != 1 || st.Events == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMonitorCountsIntoMetrics(t *testing.T) {
	metrics := trace.NewMetrics()
	m := New(Options{Metrics: metrics})
	exchange(m, 1)
	// A second execution of the same call path is the planted breach.
	m.Emit(trace.Event{Kind: trace.KindCallStart, Node: nodeB,
		ThreadHost: 1, ThreadProc: 1, Path: []uint32{1}, Module: 3})
	if got := metrics.Violations(); got != 1 {
		t.Fatalf("metrics.Violations() = %d, want 1", got)
	}
	snap := metrics.Snapshot()
	if snap.Violations != 1 || snap.ViolationRules["at-most-once"] != 1 {
		t.Fatalf("snapshot violations = %d, rules = %v",
			snap.Violations, snap.ViolationRules)
	}
	// A clean exchange adds no counts.
	exchange(m, 2)
	if got := metrics.Violations(); got != 1 {
		t.Fatalf("clean exchange moved the counter to %d", got)
	}
}

func TestMonitorKindFilter(t *testing.T) {
	m := New(Options{})
	want := rules.Kinds()
	if m.TraceKinds() != want {
		t.Fatalf("TraceKinds() = %b, want %b", m.TraceKinds(), want)
	}
	if want.Has(trace.KindSegRetransmit) || !want.Has(trace.KindCallStart) {
		t.Fatal("rule kind mask wrong")
	}
}

// TestSamplingKeepsConversationsWhole drives many conversations
// through a 1/8 sampler and asserts per-identity all-or-nothing
// sampling: every conversation the monitor retained state for saw all
// of its events (no false positives possible), and roughly 1/8 of
// identities were kept.
func TestSamplingKeepsConversationsWhole(t *testing.T) {
	m := New(Options{SampleRate: 8})
	const convs = 4000
	for cn := uint32(1); cn <= convs; cn++ {
		exchange(m, cn)
	}
	st := m.Stats()
	if st.Violations != 0 {
		t.Fatalf("clean sampled stream produced %d violations: %v", st.Violations, m.Violations())
	}
	if st.Events != convs*5 {
		t.Fatalf("events %d, want %d", st.Events, convs*5)
	}
	frac := float64(st.Sampled) / float64(st.Events)
	if frac < 0.04 || frac > 0.25 {
		t.Fatalf("sampled fraction %.3f, want near 1/8", frac)
	}
	// Sampled conversations must be complete: each kept conversation
	// contributes exactly its full event set, so Sampled is a
	// multiple of the per-conversation wire-event count (4 wire + 1
	// exec whose hash is independent).
	if st.Sampled == 0 {
		t.Fatal("nothing sampled at 1/8 over 4000 conversations")
	}
}

// TestSamplingSymmetric asserts both directions of one exchange hash
// identically: if the send is kept, the reverse-direction ack and the
// delivery are kept too.
func TestSamplingSymmetric(t *testing.T) {
	m := New(Options{SampleRate: 64})
	for cn := uint32(1); cn <= 20000; cn++ {
		send := trace.Event{Kind: trace.KindMsgSend, Node: nodeA, Peer: nodeB, CallNum: cn}
		ack := trace.Event{Kind: trace.KindAckSend, Node: nodeB, Peer: nodeA, CallNum: cn}
		if m.keep(&send) != m.keep(&ack) {
			t.Fatalf("call %d: directions sampled differently", cn)
		}
	}
}

// TestMonitorViolationDetectionUnderSampling plants a deliver-once
// breach in every conversation; sampling thins detections, never
// misses within a kept conversation.
func TestMonitorViolationDetectionUnderSampling(t *testing.T) {
	m := New(Options{SampleRate: 8})
	const convs = 2000
	for cn := uint32(1); cn <= convs; cn++ {
		del := trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, CallNum: cn}
		m.Emit(del)
		m.Emit(del) // duplicate delivery: the breach
	}
	st := m.Stats()
	if st.Violations == 0 {
		t.Fatal("sampler missed every planted breach")
	}
	// Every sampled conversation saw both deliveries, so detections
	// equal sampled conversations exactly: half the sampled events.
	if st.Violations != st.Sampled/2 {
		t.Fatalf("violations %d, sampled %d: kept conversations must detect deterministically",
			st.Violations, st.Sampled)
	}
}

// TestMonitorBoundedMemory pushes far more identities than MaxStates
// and asserts retained state stays near the bound while a clean
// stream stays clean.
func TestMonitorBoundedMemory(t *testing.T) {
	m := New(Options{MaxStates: 512})
	rng := rand.New(rand.NewSource(7))
	cn := uint32(0)
	for i := 0; i < 50000; i++ {
		cn += uint32(rng.Intn(1000) + 1) // monotone per pair, sparse identities
		exchange(m, cn)
	}
	st := m.Stats()
	if st.Violations != 0 {
		t.Fatalf("bounded clean stream produced violations: %v", m.Violations())
	}
	if st.States > 4*512 {
		t.Fatalf("retained states %d, want near the 512 budget", st.States)
	}
}

// TestMonitorViolationListBounded: the retained list clips at
// MaxViolations but the counter stays exact.
func TestMonitorViolationListBounded(t *testing.T) {
	m := New(Options{MaxViolations: 4})
	del := trace.Event{Kind: trace.KindMsgDelivered, Node: nodeB, Peer: nodeA, CallNum: 1}
	m.Emit(del)
	for i := 0; i < 10; i++ {
		m.Emit(del)
	}
	if got := len(m.Violations()); got != 4 {
		t.Fatalf("retained %d violations, want 4", got)
	}
	if st := m.Stats(); st.Violations != 10 {
		t.Fatalf("counted %d violations, want 10", st.Violations)
	}
}
