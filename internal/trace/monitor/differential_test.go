package monitor

import (
	"bytes"
	"math/rand"
	"testing"

	"circus/internal/trace"
	"circus/internal/trace/check"
	"circus/internal/transport"
)

// TestDifferentialOfflineVsOnline is the anti-drift gate for the
// shared rule implementation: a seeded synthetic trace — clean
// conversations interleaved with one planted breach of every kind —
// is serialized to JSONL, read back, and fed to both the offline
// checker and an offline-configured monitor (unsampled, unbounded).
// The two must report the identical violation sequence.
func TestDifferentialOfflineVsOnline(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var evs []trace.Event
		emit := func(e trace.Event) { evs = append(evs, e) }

		nodes := []transport.Addr{{Host: 1, Port: 1}, {Host: 2, Port: 1}, {Host: 3, Port: 1}}
		// Clean traffic: conversations between random ordered pairs.
		nextCall := map[[2]int]uint32{}
		for i := 0; i < 200; i++ {
			a, b := rng.Intn(len(nodes)), rng.Intn(len(nodes))
			if a == b {
				continue
			}
			key := [2]int{a, b}
			nextCall[key]++
			cn := nextCall[key]
			emit(trace.Event{Kind: trace.KindMsgSend, Node: nodes[a], Peer: nodes[b], CallNum: cn, N: 1})
			emit(trace.Event{Kind: trace.KindMsgDelivered, Node: nodes[b], Peer: nodes[a], CallNum: cn, N: 1})
			emit(trace.Event{Kind: trace.KindAckSend, Node: nodes[b], Peer: nodes[a], CallNum: cn, N: 1, Total: 1})
			emit(trace.Event{Kind: trace.KindCallStart, Node: nodes[b], ThreadHost: uint32(a + 1), ThreadProc: 9, Path: []uint32{cn}, Module: 2})
			emit(trace.Event{Kind: trace.KindReplySent, Node: nodes[b], Peer: nodes[a], CallNum: cn})
		}
		// Planted breaches, one of each kind, at positions the rng picks.
		breaches := []trace.Event{
			// at-most-once: re-execute a call path that already ran.
			{Kind: trace.KindCallStart, Node: nodes[1], ThreadHost: 1, ThreadProc: 9, Path: []uint32{1}, Module: 2},
			// deliver-once: re-deliver conversation 1.
			{Kind: trace.KindMsgDelivered, Node: nodes[1], Peer: nodes[0], CallNum: 1, N: 1},
			// monotone-call-numbers: reuse call number 1.
			{Kind: trace.KindMsgSend, Node: nodes[0], Peer: nodes[1], CallNum: 1, N: 1},
			// reply-after-request: reply to a call never delivered.
			{Kind: trace.KindReplySent, Node: nodes[2], Peer: nodes[0], CallNum: 999},
			// ack-monotone + ack-beyond-send do not fire here;
			// full-ack-after-assembly: full ack with no delivery.
			{Kind: trace.KindAckSend, Node: nodes[2], Peer: nodes[0], CallNum: 998, N: 2, Total: 2},
		}
		for _, b := range breaches {
			at := rng.Intn(len(evs) + 1)
			evs = append(evs[:at], append([]trace.Event{b}, evs[at:]...)...)
		}

		// Serialize through the JSONL sink and read back, exactly the
		// artifact path CI uses.
		var buf bytes.Buffer
		sink := trace.NewJSONL(&buf)
		for _, e := range evs {
			sink.Emit(e)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		decoded, err := trace.ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}

		offline := check.Check(decoded, check.Config{})

		m := New(Options{MaxStates: -1}) // offline-exact: unsampled, unbounded
		for _, e := range decoded {
			m.Emit(e)
		}
		online := m.Violations()

		if len(offline) != len(online) {
			t.Fatalf("seed %d: offline found %d violations, online %d\noffline: %v\nonline: %v",
				seed, len(offline), len(online), check.Strings(offline), online)
		}
		for i := range offline {
			if offline[i] != online[i] {
				t.Fatalf("seed %d: violation %d differs\noffline: %v\nonline:  %v",
					seed, i, offline[i], online[i])
			}
		}
		if len(offline) < len(breaches) {
			t.Fatalf("seed %d: only %d of %d planted breaches found: %v",
				seed, len(offline), len(breaches), check.Strings(offline))
		}
	}
}
