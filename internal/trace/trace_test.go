package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"circus/internal/transport"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindUnknown; k < kindCount; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if got := KindFromString(name); got != k {
			t.Fatalf("KindFromString(%q) = %v, want %v", name, got, k)
		}
	}
	if got := KindFromString("no.such.kind"); got != KindUnknown {
		t.Fatalf("unknown name parsed to %v", got)
	}
}

func TestLocalNilSafety(t *testing.T) {
	var l *Local
	if l.Enabled() {
		t.Fatal("nil Local is enabled")
	}
	l.Emit(Event{Kind: KindMsgSend}) // must not panic
	if l.Node() != (transport.Addr{}) || l.Inc() != 0 {
		t.Fatal("nil Local leaked identity")
	}
	if NewLocal(nil, transport.Addr{Host: 1}, 1) != nil {
		t.Fatal("NewLocal(nil sink) != nil")
	}
}

func TestLocalStampsIdentity(t *testing.T) {
	rec := NewRecorder()
	node := transport.Addr{Host: 7, Port: 9}
	l := NewLocal(rec, node, 42)
	if !l.Enabled() {
		t.Fatal("enabled Local reports disabled")
	}
	before := time.Now()
	l.Emit(Event{Kind: KindMsgSend, CallNum: 5})
	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Node != node || e.Inc != 42 || e.CallNum != 5 || e.Seq != 1 {
		t.Fatalf("event not stamped: %+v", e)
	}
	if e.T.Before(before) {
		t.Fatal("timestamp not stamped")
	}
}

func TestFilterKinds(t *testing.T) {
	if FilterKinds(nil, AllKinds) != nil {
		t.Fatal("FilterKinds(nil) != nil")
	}
	if FilterKinds(NewRecorder(), 0) != nil {
		t.Fatal("FilterKinds with empty set != nil")
	}

	rec := NewRecorder()
	keep := MaskOf(KindCallIssued, KindCollateDone)
	l := NewLocal(FilterKinds(rec, keep), transport.Addr{Host: 1}, 1)
	if !l.Enabled() {
		t.Fatal("filtered Local reports disabled")
	}
	if l.EnabledFor(KindMsgSend) || !l.EnabledFor(KindCallIssued) {
		t.Fatal("EnabledFor disagrees with the filter")
	}
	l.Emit(Event{Kind: KindMsgSend}) // excluded: dropped before the sink
	l.Emit(Event{Kind: KindCallIssued})
	if evs := rec.Events(); len(evs) != 1 || evs[0].Kind != KindCallIssued {
		t.Fatalf("filter leaked: %+v", evs)
	}

	// Filtered-out emission must not allocate: the hot path builds no
	// Event when EnabledFor says no, and Emit drops excluded kinds
	// before stamping.
	allocs := testing.AllocsPerRun(100, func() {
		if l.EnabledFor(KindMsgSend) {
			t.Fatal("unexpected enable")
		}
		l.Emit(Event{Kind: KindMsgSend})
	})
	if allocs > 0 {
		t.Fatalf("filtered emission allocated %.1f times per op", allocs)
	}

	// A Multi's mask is the union of its members' interests.
	other := NewRecorder()
	m := Multi(FilterKinds(rec, MaskOf(KindAckSend)), FilterKinds(other, MaskOf(KindProbeSend)))
	lm := NewLocal(m, transport.Addr{Host: 2}, 2)
	if !lm.EnabledFor(KindAckSend) || !lm.EnabledFor(KindProbeSend) || lm.EnabledFor(KindTxnCommit) {
		t.Fatal("multi mask union wrong")
	}
	lm.Emit(Event{Kind: KindAckSend})
	lm.Emit(Event{Kind: KindProbeSend})
	if rec.Len() != 2 || other.Len() != 1 {
		t.Fatalf("multi filter routing wrong: %d/%d", rec.Len(), other.Len())
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live sinks is not nil")
	}
	a, b := NewRecorder(), NewRecorder()
	if got := Multi(nil, a); got != Sink(a) {
		t.Fatal("single live sink not unwrapped")
	}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: KindAckSend})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out reached %d/%d sinks", a.Len(), b.Len())
	}
}

func TestRecorderWaitExistingAndFuture(t *testing.T) {
	rec := NewRecorder()
	rec.Emit(Event{Kind: KindMsgSend})
	// Wait on an already-recorded event returns immediately.
	if _, ok := rec.Wait(10*time.Millisecond, ByKind(KindMsgSend)); !ok {
		t.Fatal("Wait missed an already-recorded event")
	}
	// Wait on a future event is released by its arrival.
	done := make(chan bool, 1)
	go func() {
		_, ok := rec.WaitN(2*time.Second, 2, ByKind(KindAckSend))
		done <- ok
	}()
	rec.Emit(Event{Kind: KindAckSend})
	rec.Emit(Event{Kind: KindAckSend})
	if !<-done {
		t.Fatal("WaitN missed events emitted after registration")
	}
	// Timeout on an event that never comes.
	if _, ok := rec.Wait(20*time.Millisecond, ByKind(KindTxnAbort)); ok {
		t.Fatal("Wait invented an event")
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.Emit(Event{Kind: KindMsgSend})
			}
		}()
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Fatalf("recorded %d events, want 800", rec.Len())
	}
	// Seq is a total order without gaps.
	seen := make(map[uint64]bool)
	for _, e := range rec.Events() {
		if e.Seq < 1 || e.Seq > 800 || seen[e.Seq] {
			t.Fatalf("bad Seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	in := []Event{
		{Kind: KindMsgSend, Node: transport.Addr{Host: 1, Port: 2},
			Inc: 3, Peer: transport.Addr{Host: 4, Port: 5}, MsgType: 1,
			CallNum: 6, N: 7, T: time.Unix(100, 200)},
		{Kind: KindCallStart, ThreadHost: 8, ThreadProc: 9,
			Path: []uint32{1, 2, 3}, Troupe: 10, Module: 11, Proc: 12,
			T: time.Unix(101, 0)},
		{Kind: KindCollateDone, Dur: 250 * time.Microsecond,
			Err: "boom", Detail: "d", Member: 2, Attempt: 1, T: time.Unix(102, 0)},
	}
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i, e := range out {
		want := in[i]
		if e.Kind != want.Kind || e.Node != want.Node || e.Inc != want.Inc ||
			e.Peer != want.Peer || e.MsgType != want.MsgType ||
			e.CallNum != want.CallNum || e.N != want.N ||
			e.ThreadHost != want.ThreadHost || e.ThreadProc != want.ThreadProc ||
			e.Troupe != want.Troupe || e.Module != want.Module || e.Proc != want.Proc ||
			e.Dur != want.Dur || e.Err != want.Err || e.Detail != want.Detail ||
			e.Member != want.Member || e.Attempt != want.Attempt {
			t.Fatalf("event %d diverged:\n got %+v\nwant %+v", i, e, want)
		}
		if !e.T.Equal(want.T) {
			t.Fatalf("event %d time %v, want %v", i, e.T, want.T)
		}
		if len(e.Path) != len(want.Path) {
			t.Fatalf("event %d path %v, want %v", i, e.Path, want.Path)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d reassigned Seq %d", i, e.Seq)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"kind\":\"msg.send\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()
	peer := transport.Addr{Host: 9, Port: 1}
	m.Emit(Event{Kind: KindMsgSend, Peer: peer})
	m.Emit(Event{Kind: KindMsgSend, Peer: peer})
	m.Emit(Event{Kind: KindSegRetransmit, Peer: peer, N: 3})
	m.Emit(Event{Kind: KindAckSend, Peer: peer})
	m.Emit(Event{Kind: KindCollateDone, Troupe: 77, Dur: 3 * time.Millisecond})
	m.Emit(Event{Kind: KindCollateDone, Troupe: 77, Dur: 5 * time.Millisecond, Err: "x"})

	if got := m.Count(KindMsgSend); got != 2 {
		t.Fatalf("Count(MsgSend) = %d, want 2", got)
	}
	s := m.Snapshot()
	pc, ok := s.Peers[peer]
	if !ok {
		t.Fatal("peer counters missing from snapshot")
	}
	if pc.MsgsSent != 2 || pc.Retransmits != 3 || pc.AcksSent != 1 {
		t.Fatalf("peer counters %+v", pc)
	}
	if s.Calls != 2 || s.CallErrors != 1 {
		t.Fatalf("calls = %d errors = %d, want 2 and 1", s.Calls, s.CallErrors)
	}
	if s.Troupes[77] != 2 {
		t.Fatalf("troupe 77 calls = %d, want 2", s.Troupes[77])
	}
	var histTotal int64
	for _, c := range s.Latency {
		histTotal += c
	}
	if histTotal != 2 {
		t.Fatalf("latency histogram holds %d samples, want 2", histTotal)
	}
}

func TestLatencyBuckets(t *testing.T) {
	// Bucket lower bounds are monotone powers of two.
	var prev time.Duration = -1
	for i := 0; i < latencyBuckets; i++ {
		lo := LatencyBucketLow(i)
		if lo <= prev {
			t.Fatalf("bucket %d lower bound %v not increasing", i, lo)
		}
		prev = lo
	}
	// A sample lands in the bucket whose range contains it.
	m := NewMetrics()
	m.Emit(Event{Kind: KindCollateDone, Dur: 3 * time.Millisecond})
	s := m.Snapshot()
	for i, c := range s.Latency {
		if c == 0 {
			continue
		}
		lo := LatencyBucketLow(i)
		if 3*time.Millisecond < lo {
			t.Fatalf("3ms sample landed in bucket %d starting at %v", i, lo)
		}
	}
}

// BenchmarkDisabledEmit measures the disabled-tracing hot path: the
// guard must not allocate.
func BenchmarkDisabledEmit(b *testing.B) {
	var l *Local
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.Enabled() {
			l.Emit(Event{Kind: KindMsgSend, CallNum: uint32(i)})
		}
	}
}
