package collate

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

var errDown = errors.New("member down")

func feed(c Collator, items ...Item) ([]byte, error) {
	for _, it := range items {
		if c.Add(it) {
			break
		}
	}
	return c.Result()
}

func TestUnanimousAgree(t *testing.T) {
	got, err := feed(Unanimous(3),
		Item{0, []byte("v"), nil},
		Item{1, []byte("v"), nil},
		Item{2, []byte("v"), nil})
	if err != nil || string(got) != "v" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestUnanimousDisagreementDetected(t *testing.T) {
	_, err := feed(Unanimous(3),
		Item{0, []byte("v"), nil},
		Item{1, []byte("w"), nil})
	if err != ErrDisagreement {
		t.Fatalf("err = %v, want ErrDisagreement", err)
	}
}

func TestUnanimousDecidesEarlyOnDisagreement(t *testing.T) {
	u := Unanimous(5)
	u.Add(Item{0, []byte("v"), nil})
	if done := u.Add(Item{1, []byte("w"), nil}); !done {
		t.Fatal("disagreement did not terminate collation early")
	}
}

func TestUnanimousToleratesCrashedMembers(t *testing.T) {
	// The client proceeds with the messages from members still
	// available (§4.3.1).
	got, err := feed(Unanimous(3),
		Item{0, nil, errDown},
		Item{1, []byte("v"), nil},
		Item{2, []byte("v"), nil})
	if err != nil || string(got) != "v" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestUnanimousAllFailed(t *testing.T) {
	_, err := feed(Unanimous(2), Item{0, nil, errDown}, Item{1, nil, errDown})
	if err != ErrAllFailed {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
}

func TestFirstComeTakesFirst(t *testing.T) {
	f := FirstCome(3)
	if done := f.Add(Item{2, []byte("fast"), nil}); !done {
		t.Fatal("first message did not decide")
	}
	got, err := f.Result()
	if err != nil || string(got) != "fast" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestFirstComeSkipsFailures(t *testing.T) {
	got, err := feed(FirstCome(3),
		Item{0, nil, errDown},
		Item{1, []byte("slow but alive"), nil})
	if err != nil || string(got) != "slow but alive" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestFirstComeAllFailed(t *testing.T) {
	_, err := feed(FirstCome(2), Item{0, nil, errDown}, Item{1, nil, errDown})
	if err != ErrAllFailed {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
}

func TestMajorityWins(t *testing.T) {
	got, err := feed(Majority(3),
		Item{0, []byte("a"), nil},
		Item{1, []byte("b"), nil},
		Item{2, []byte("a"), nil})
	if err != nil || string(got) != "a" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestMajorityDecidesEarly(t *testing.T) {
	m := Majority(5)
	m.Add(Item{0, []byte("a"), nil})
	m.Add(Item{1, []byte("a"), nil})
	if done := m.Add(Item{2, []byte("a"), nil}); !done {
		t.Fatal("3 of 5 identical did not decide")
	}
}

func TestNoMajority(t *testing.T) {
	_, err := feed(Majority(3),
		Item{0, []byte("a"), nil},
		Item{1, []byte("b"), nil},
		Item{2, []byte("c"), nil})
	if err != ErrNoMajority {
		t.Fatalf("err = %v, want ErrNoMajority", err)
	}
}

func TestMajorityUnreachableTerminatesEarly(t *testing.T) {
	m := Majority(3) // needs 2 identical
	m.Add(Item{0, []byte("a"), nil})
	m.Add(Item{1, []byte("b"), nil})
	if done := m.Add(Item{2, nil, errDown}); !done {
		t.Fatal("unreachable majority did not terminate")
	}
	if _, err := m.Result(); err != ErrNoMajority {
		t.Fatalf("err = %v, want ErrNoMajority", err)
	}
}

func TestQuorum(t *testing.T) {
	got, err := feed(Quorum(5, 2),
		Item{0, []byte("x"), nil},
		Item{1, []byte("y"), nil},
		Item{2, []byte("y"), nil})
	if err != nil || string(got) != "y" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestQuorumUnreachable(t *testing.T) {
	_, err := feed(Quorum(3, 3),
		Item{0, []byte("x"), nil},
		Item{1, []byte("y"), nil},
		Item{2, []byte("x"), nil})
	if err != ErrNoQuorum {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestCustomCollatorAveraging(t *testing.T) {
	// The temperature-averaging server of Figure 7.7, as a collator.
	avg := New(3, func(items []Item) ([]byte, error) {
		var vals []float64
		for _, it := range items {
			if it.Err == nil {
				vals = append(vals, float64(it.Data[0]))
			}
		}
		return []byte{byte(MeanFloat64(vals))}, nil
	})
	got, err := feed(avg,
		Item{0, []byte{10}, nil},
		Item{1, []byte{20}, nil},
		Item{2, []byte{30}, nil})
	if err != nil || got[0] != 20 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestCustomAllFailed(t *testing.T) {
	c := New(2, func(items []Item) ([]byte, error) { return nil, nil })
	_, err := feed(c, Item{0, nil, errDown}, Item{1, nil, errDown})
	if err != ErrAllFailed {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
}

func TestRunDrainsGenerator(t *testing.T) {
	ch := make(chan Item, 3)
	ch <- Item{0, []byte("r"), nil}
	ch <- Item{1, []byte("r"), nil}
	ch <- Item{2, []byte("r"), nil}
	got, err := Run(ch, 3, Unanimous(3))
	if err != nil || string(got) != "r" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestRunStopsEarlyOnDecision(t *testing.T) {
	ch := make(chan Item, 1)
	ch <- Item{0, []byte("first"), nil}
	// No further items are ever sent; FirstCome must not block.
	got, err := Run(ch, 3, FirstCome(3))
	if err != nil || string(got) != "first" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestRunClosedChannel(t *testing.T) {
	ch := make(chan Item)
	close(ch)
	if _, err := Run(ch, 3, Unanimous(3)); err != ErrAllFailed {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
}

func TestMedianFloat64(t *testing.T) {
	if m := MedianFloat64([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := MedianFloat64([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %v, want 2.5", m)
	}
	if m := MedianFloat64([]float64{7}); m != 7 {
		t.Errorf("median single = %v, want 7", m)
	}
}

func TestMeanFloat64(t *testing.T) {
	if m := MeanFloat64([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("mean = %v, want 2.5", m)
	}
}

// Property: with n identical healthy replies every collator returns
// that value.
func TestQuickCollatorsAgreeOnIdenticalInput(t *testing.T) {
	f := func(data []byte, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		for _, mk := range []func(int) Collator{Unanimous, FirstCome, Majority} {
			c := mk(n)
			for i := 0; i < n; i++ {
				if c.Add(Item{i, data, nil}) {
					break
				}
			}
			got, err := c.Result()
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: majority never returns a value held by <= n/2 members.
func TestQuickMajoritySound(t *testing.T) {
	f := func(votes []uint8) bool {
		n := len(votes)
		if n == 0 {
			return true
		}
		c := Majority(n)
		counts := map[uint8]int{}
		for i, v := range votes {
			counts[v]++
			if c.Add(Item{i, []byte{v}, nil}) {
				break
			}
		}
		got, err := c.Result()
		if err != nil {
			// Valid only if no value truly has a majority.
			for _, cnt := range counts {
				if cnt > n/2 {
					return false
				}
			}
			return true
		}
		// Count the winner's true frequency over all votes.
		total := 0
		for _, v := range votes {
			if v == got[0] {
				total++
			}
		}
		return total > n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the median lies between min and max.
func TestQuickMedianBounded(t *testing.T) {
	f := func(vs []float64) bool {
		if len(vs) == 0 {
			return true
		}
		for _, v := range vs {
			if math.IsNaN(v) {
				return true
			}
		}
		m := MedianFloat64(vs)
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCollatorEdgeCases tabulates the awkward corners of each
// collator: exact ties under majority voting, quorums that fall one
// vote short, stragglers arriving after a decision, and custom
// collating functions that themselves fail.
func TestCollatorEdgeCases(t *testing.T) {
	item := func(m int, s string) Item { return Item{Member: m, Data: []byte(s)} }
	fail := func(m int) Item { return Item{Member: m, Err: errDown} }

	tests := []struct {
		name    string
		mk      func() Collator
		items   []Item
		want    string
		wantErr error
	}{
		{
			name:    "majority 2-2 tie is no majority",
			mk:      func() Collator { return Majority(4) },
			items:   []Item{item(0, "a"), item(1, "b"), item(2, "a"), item(3, "b")},
			wantErr: ErrNoMajority,
		},
		{
			name:    "majority three-way tie is no majority",
			mk:      func() Collator { return Majority(3) },
			items:   []Item{item(0, "a"), item(1, "b"), item(2, "c")},
			wantErr: ErrNoMajority,
		},
		{
			name: "majority tie broken by surviving member",
			mk:   func() Collator { return Majority(5) },
			// 2-2 among the first four; the fifth member settles it.
			items: []Item{item(0, "a"), item(1, "b"), item(2, "a"), item(3, "b"), item(4, "a")},
			want:  "a",
		},
		{
			name:    "majority all but one crashed",
			mk:      func() Collator { return Majority(3) },
			items:   []Item{fail(0), item(1, "x"), fail(2)},
			wantErr: ErrNoMajority,
		},
		{
			name:    "quorum one vote below threshold",
			mk:      func() Collator { return Quorum(5, 3) },
			items:   []Item{item(0, "v"), item(1, "v"), item(2, "w"), fail(3), fail(4)},
			wantErr: ErrNoQuorum,
		},
		{
			name:  "quorum met exactly at threshold",
			mk:    func() Collator { return Quorum(5, 3) },
			items: []Item{item(0, "v"), item(1, "w"), item(2, "v"), item(3, "v")},
			want:  "v",
		},
		{
			name:  "quorum k=1 degenerates to first-come",
			mk:    func() Collator { return Quorum(3, 1) },
			items: []Item{fail(0), item(1, "late"), item(2, "later")},
			want:  "late",
		},
		{
			name: "first-come ignores straggler after decision",
			mk:   func() Collator { return FirstCome(3) },
			// feed stops at the first Add returning true, as Run does;
			// the straggler below must not change the result.
			items: []Item{item(0, "fast"), item(1, "slow"), item(2, "slower")},
			want:  "fast",
		},
		{
			name:  "first-come failure then success",
			mk:    func() Collator { return FirstCome(3) },
			items: []Item{fail(0), item(1, "ok"), item(2, "no")},
			want:  "ok",
		},
		{
			name: "custom collator returning error",
			mk: func() Collator {
				return New(2, func(items []Item) ([]byte, error) {
					return nil, errors.New("collating function failed")
				})
			},
			items:   []Item{item(0, "x"), item(1, "y")},
			wantErr: nil, // checked by message below
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := feed(tt.mk(), tt.items...)
			if tt.name == "custom collator returning error" {
				if err == nil || err.Error() != "collating function failed" {
					t.Fatalf("err = %v, want the collating function's own error", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
			if tt.wantErr == nil && string(got) != tt.want {
				t.Fatalf("result = %q, want %q", got, tt.want)
			}
		})
	}
}

// TestFirstComeStragglerAfterDecision feeds a straggler into a
// collator that has already decided — the generator pattern of §7.4
// keeps draining member replies after computation proceeds — and
// verifies the decision stands.
func TestFirstComeStragglerAfterDecision(t *testing.T) {
	c := FirstCome(3)
	if !c.Add(Item{Member: 0, Data: []byte("winner")}) {
		t.Fatal("first-come did not decide on the first arrival")
	}
	// Stragglers after the decision.
	c.Add(Item{Member: 1, Data: []byte("loser")})
	c.Add(Item{Member: 2, Err: errDown})
	got, err := c.Result()
	if err != nil || string(got) != "winner" {
		t.Fatalf("Result = %q, %v; want \"winner\", nil", got, err)
	}
}

// TestMajorityStragglerAfterDecision: a late divergent reply must not
// overturn a majority already reached.
func TestMajorityStragglerAfterDecision(t *testing.T) {
	c := Majority(3)
	c.Add(Item{Member: 0, Data: []byte("v")})
	if !c.Add(Item{Member: 1, Data: []byte("v")}) {
		t.Fatal("majority of 3 did not decide at 2 identical replies")
	}
	c.Add(Item{Member: 2, Data: []byte("w")})
	got, err := c.Result()
	if err != nil || string(got) != "v" {
		t.Fatalf("Result = %q, %v; want \"v\", nil", got, err)
	}
}

func ExampleMajority() {
	c := Majority(3)
	c.Add(Item{Member: 0, Data: []byte("yes")})
	c.Add(Item{Member: 1, Data: []byte("no")})
	c.Add(Item{Member: 2, Data: []byte("yes")})
	v, _ := c.Result()
	fmt.Println(string(v))
	// Output: yes
}
