// Package collate implements collators (§4.3.6): functions that reduce
// the set of messages arriving from a troupe to a single result.
//
// Three collators are supported at the protocol level, viewing message
// contents as uninterpreted bits: unanimous, which requires all
// messages to be identical and raises an exception otherwise;
// majority, which performs majority voting; and first-come, which
// accepts the first message to arrive. Computation proceeds as soon as
// enough messages have arrived for the collator to decide — the lazy
// evaluation the paper asks for. Programmers define application-
// specific collators with New (§7.4's explicit replication).
package collate

import (
	"bytes"
	"errors"
	"sort"
)

// Item is one member's contribution to a replicated exchange: either a
// message or a member-level failure (crash, §4.3.5).
type Item struct {
	Member int // index of the troupe member
	Data   []byte
	Err    error
}

// Collator reduces a stream of items to one result. Add is called as
// items arrive and returns true once the collator has decided; Result
// may be called once Add returned true or the stream is exhausted.
type Collator interface {
	Add(it Item) (done bool)
	Result() ([]byte, error)
}

var (
	// ErrDisagreement is raised by the unanimous collator when troupe
	// members return different messages — the error detection that
	// waiting for all messages buys (§4.3.4).
	ErrDisagreement = errors.New("collate: troupe members disagree")
	// ErrNoMajority is raised by the majority collator when no value
	// is returned by more than half the troupe.
	ErrNoMajority = errors.New("collate: no majority value")
	// ErrAllFailed is raised when every troupe member failed.
	ErrAllFailed = errors.New("collate: all troupe members failed")
	// ErrNoQuorum is raised by Quorum when too few identical messages
	// remain achievable.
	ErrNoQuorum = errors.New("collate: quorum unreachable")
)

// Unanimous returns the default Circus collator (§4.3.4): it waits for
// all n members, demands bit-identical messages, and reports
// disagreement otherwise. Members that fail (crash) are excluded, as
// the paper's client proceeds with the messages of the members that
// are still available.
func Unanimous(n int) Collator { return &unanimous{n: n} }

type unanimous struct {
	n       int
	seen    int
	have    bool
	first   []byte
	failed  int
	badErr  error
	decided bool
}

func (u *unanimous) Add(it Item) bool {
	u.seen++
	if it.Err != nil {
		u.failed++
	} else if !u.have {
		u.have = true
		u.first = it.Data
	} else if !bytes.Equal(u.first, it.Data) {
		u.badErr = ErrDisagreement
		u.decided = true
	}
	return u.decided || u.seen >= u.n
}

func (u *unanimous) Result() ([]byte, error) {
	if u.badErr != nil {
		return nil, u.badErr
	}
	if !u.have {
		return nil, ErrAllFailed
	}
	return u.first, nil
}

// FirstCome returns the collator that accepts the first message to
// arrive, forfeiting error detection for speed (§4.3.4): execution
// time is determined by the fastest member of each troupe.
func FirstCome(n int) Collator { return &firstCome{n: n} }

type firstCome struct {
	n    int
	seen int
	have bool
	data []byte
}

func (f *firstCome) Add(it Item) bool {
	f.seen++
	if it.Err == nil && !f.have {
		f.have = true
		f.data = it.Data
		return true
	}
	return f.seen >= f.n
}

func (f *firstCome) Result() ([]byte, error) {
	if !f.have {
		return nil, ErrAllFailed
	}
	return f.data, nil
}

// Majority returns the majority-voting collator (§4.3.6, Figure 7.10):
// the result is a message returned by more than half of the n troupe
// members. It decides as soon as some message reaches the threshold.
func Majority(n int) Collator {
	q := Quorum(n, n/2+1).(*quorum)
	q.majority = true
	return q
}

// Quorum returns a collator that accepts any message returned by at
// least k of the n members — the building block for weighted-voting
// style schemes (§4.3.6 notes the framework expresses Gifford's
// weighted voting).
func Quorum(n, k int) Collator {
	if k < 1 {
		k = 1
	}
	return &quorum{n: n, k: k, counts: make(map[string]int)}
}

type quorum struct {
	n, k     int
	majority bool
	seen     int
	counts   map[string]int
	winner   []byte
	haveWin  bool
}

func (q *quorum) Add(it Item) bool {
	q.seen++
	if it.Err == nil && !q.haveWin {
		s := string(it.Data)
		q.counts[s]++
		if q.counts[s] >= q.k {
			q.haveWin = true
			q.winner = it.Data
		}
	}
	if q.haveWin {
		return true
	}
	// Decide early if no message can still reach the quorum.
	remaining := q.n - q.seen
	best := 0
	for _, c := range q.counts {
		if c > best {
			best = c
		}
	}
	return best+remaining < q.k
}

func (q *quorum) Result() ([]byte, error) {
	if q.haveWin {
		return q.winner, nil
	}
	if len(q.counts) == 0 {
		return nil, ErrAllFailed
	}
	if q.majority {
		return nil, ErrNoMajority
	}
	return nil, ErrNoQuorum
}

// Func is a terminal collating function applied to the complete set of
// received items, for application-specific collation such as averaging
// sensor readings or approximate agreement (§7.4).
type Func func(items []Item) ([]byte, error)

// New wraps f as a Collator that waits for all n members and then
// applies f to whatever arrived. It is the programmable hook the
// paper's generator-based explicit replication provides.
func New(n int, f Func) Collator { return &custom{n: n, f: f} }

type custom struct {
	n     int
	f     Func
	items []Item
}

func (c *custom) Add(it Item) bool {
	c.items = append(c.items, it)
	return len(c.items) >= c.n
}

func (c *custom) Result() ([]byte, error) {
	ok := 0
	for _, it := range c.items {
		if it.Err == nil {
			ok++
		}
	}
	if ok == 0 {
		return nil, ErrAllFailed
	}
	return c.f(c.items)
}

// Run drains items (a generator of messages from a troupe, Figure
// 7.11) into c until it decides or n items have been consumed, then
// returns the collated result.
func Run(items <-chan Item, n int, c Collator) ([]byte, error) {
	for i := 0; i < n; i++ {
		it, ok := <-items
		if !ok {
			break
		}
		if c.Add(it) {
			break
		}
	}
	return c.Result()
}

// MedianFloat64 returns the median of vs, the building block of the
// majority collator of Figure 7.10 and of averaging collators for
// clock synchronization (§7.4). It panics on an empty slice.
func MedianFloat64(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return s[m-1]/2 + s[m]/2 // halve before adding: no overflow at extremes
}

// MeanFloat64 returns the arithmetic mean of vs, used by the
// temperature-averaging server of Figure 7.7. It panics on an empty
// slice.
func MeanFloat64(vs []float64) float64 {
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
