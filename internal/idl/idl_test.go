package idl

import (
	"strings"
	"testing"
)

// fig72 is the NameServer interface of Figure 7.2, restricted to the
// supported subset (Properties spelled out; UNSPECIFIED sequences
// kept).
const fig72 = `
NameServer: PROGRAM 26 VERSION 1 =
BEGIN
    -- Types.
    Name: TYPE = STRING;
    Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
    Properties: TYPE = SEQUENCE OF Property;
    -- Errors.
    AlreadyExists: ERROR = 0;
    NotFound: ERROR = 1;
    -- Procedures.
    Register: PROCEDURE [name: Name, properties: Properties]
        REPORTS [AlreadyExists] = 0;
    Lookup: PROCEDURE [name: Name]
        RETURNS [properties: Properties]
        REPORTS [NotFound] = 1;
    Delete: PROCEDURE [name: Name]
        REPORTS [NotFound] = 2;
END.
`

func TestParseFigure72(t *testing.T) {
	prog, err := Parse(fig72)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Name != "NameServer" || prog.Number != 26 || prog.Version != 1 {
		t.Fatalf("header: %+v", prog)
	}
	if len(prog.Types) != 3 {
		t.Fatalf("types: %d", len(prog.Types))
	}
	if len(prog.Errors) != 2 {
		t.Fatalf("errors: %d", len(prog.Errors))
	}
	if len(prog.Procs) != 3 {
		t.Fatalf("procs: %d", len(prog.Procs))
	}
	reg := prog.Procs[0]
	if reg.Name != "Register" || reg.Number != 0 || len(reg.Args) != 2 ||
		len(reg.Results) != 0 || len(reg.Reports) != 1 {
		t.Fatalf("Register: %+v", reg)
	}
	lookup := prog.Procs[1]
	if len(lookup.Results) != 1 || lookup.Results[0].Name != "properties" {
		t.Fatalf("Lookup: %+v", lookup)
	}
}

func TestParseTypeExpressions(t *testing.T) {
	prog, err := Parse(`
T: PROGRAM 1 VERSION 1 =
BEGIN
    A: TYPE = ARRAY 4 OF LONG CARDINAL;
    B: TYPE = RECORD [x: BOOLEAN, y: INTEGER, z: A];
    C: TYPE = SEQUENCE OF SEQUENCE OF STRING;
    P: PROCEDURE [a: A, b: B, c: C] RETURNS [ok: BOOLEAN] = 0;
END.
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a, _ := prog.TypeByName("A")
	arr, ok := a.Type.(Array)
	if !ok || arr.N != 4 {
		t.Fatalf("A = %v", a.Type)
	}
	if arr.Elem.(Prim).Kind != LongCardinal {
		t.Fatalf("A elem = %v", arr.Elem)
	}
	c, _ := prog.TypeByName("C")
	if c.Type.String() != "SEQUENCE OF SEQUENCE OF STRING" {
		t.Fatalf("C = %v", c.Type)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"empty":             ``,
		"no end":            `X: PROGRAM 1 VERSION 1 = BEGIN Y: TYPE = STRING;`,
		"undefined ref":     `X: PROGRAM 1 VERSION 1 = BEGIN P: PROCEDURE [a: Nope] = 0; END.`,
		"recursive type":    `X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = RECORD [next: A]; END.`,
		"mutual recursion":  `X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = RECORD [b: B]; B: TYPE = RECORD [a: A]; END.`,
		"dup type":          `X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = STRING; A: TYPE = STRING; END.`,
		"dup proc number":   `X: PROGRAM 1 VERSION 1 = BEGIN P: PROCEDURE = 0; Q: PROCEDURE = 0; END.`,
		"dup proc name":     `X: PROGRAM 1 VERSION 1 = BEGIN P: PROCEDURE = 0; P: PROCEDURE = 1; END.`,
		"dup error code":    `X: PROGRAM 1 VERSION 1 = BEGIN E: ERROR = 0; F: ERROR = 0; END.`,
		"undeclared report": `X: PROGRAM 1 VERSION 1 = BEGIN P: PROCEDURE REPORTS [Ghost] = 0; END.`,
		"reserved proc":     `X: PROGRAM 1 VERSION 1 = BEGIN P: PROCEDURE = 65535; END.`,
		"bad long":          `X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = LONG STRING; END.`,
		"zero array":        `X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = ARRAY 0 OF STRING; END.`,
		"dup field":         `X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = RECORD [a: STRING, a: STRING]; END.`,
		"missing semicolon": `X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = STRING END.`,
		"garbage":           `X: PROGRAM 1 VERSION 1 = BEGIN @ END.`,
	}
	for label, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse succeeded, want error", label)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	prog, err := Parse(`
-- leading comment
X: PROGRAM 9 VERSION 2 = -- trailing comment
BEGIN
    -- a full-line comment
    P: PROCEDURE = 0;
END.
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Number != 9 || prog.Version != 2 || len(prog.Procs) != 1 {
		t.Fatalf("prog: %+v", prog)
	}
}

func TestEmptyArgLists(t *testing.T) {
	prog, err := Parse(`X: PROGRAM 1 VERSION 1 = BEGIN P: PROCEDURE [] RETURNS [] = 0; END.`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Procs[0].Args) != 0 || len(prog.Procs[0].Results) != 0 {
		t.Fatalf("procs: %+v", prog.Procs[0])
	}
}

func TestTypeStrings(t *testing.T) {
	r := Record{Fields: []Field{{Name: "a", Type: Prim{Boolean}}, {Name: "b", Type: Ref{"T"}}}}
	if got := r.String(); !strings.Contains(got, "a: BOOLEAN") || !strings.Contains(got, "b: T") {
		t.Fatalf("Record.String() = %q", got)
	}
	if (Prim{LongInteger}).String() != "LONG INTEGER" {
		t.Fatal("prim string broken")
	}
}

func TestTypeByNameMissing(t *testing.T) {
	prog := &Program{}
	if _, ok := prog.TypeByName("x"); ok {
		t.Fatal("found nonexistent type")
	}
}
