package idl

import "testing"

// FuzzParse: the IDL front end must never panic on arbitrary input.
func FuzzParse(f *testing.F) {
	f.Add(fig72)
	f.Add(`X: PROGRAM 1 VERSION 1 = BEGIN END.`)
	f.Add(`X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = SEQUENCE OF SEQUENCE OF RECORD [x: STRING]; END.`)
	f.Add(`X: PROGRAM`)
	f.Add(`-- only a comment`)
	f.Add(`X: PROGRAM 1 VERSION 1 = BEGIN A: TYPE = RECORD [a: A]; END.`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Anything that parses must re-check cleanly.
		if cerr := Check(prog); cerr != nil {
			t.Fatalf("Parse accepted a program Check rejects: %v", cerr)
		}
	})
}
