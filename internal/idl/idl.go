// Package idl implements the interface definition language of the
// stub compilers in §7.1: a subset of Xerox Courier. An interface
// specification consists of declarations of types, errors, and
// procedures (Figure 7.2):
//
//	NameServer: PROGRAM 26 VERSION 1 =
//	BEGIN
//	    Name: TYPE = STRING;
//	    Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
//	    AlreadyExists: ERROR = 0;
//	    Register: PROCEDURE [name: Name, properties: Properties]
//	        REPORTS [AlreadyExists] = 0;
//	    Lookup: PROCEDURE [name: Name] RETURNS [properties: Properties]
//	        REPORTS [NotFound] = 1;
//	END.
//
// Supported predefined types: BOOLEAN, CARDINAL, LONG CARDINAL,
// INTEGER, LONG INTEGER, STRING, UNSPECIFIED. Constructed types:
// RECORD, SEQUENCE OF, ARRAY n OF. As in the Courier-to-C stub
// compiler (§7.1.1), the features with no natural Go counterpart
// (CHOICE, procedure constants) are not supported, and recursive types
// are rejected as they were by the Modula-2 stub compiler's marking
// algorithm (§7.1.4).
package idl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// PrimKind enumerates the predefined Courier types.
type PrimKind int

const (
	Boolean PrimKind = iota
	Cardinal
	LongCardinal
	Integer
	LongInteger
	String
	Unspecified
)

var primNames = map[PrimKind]string{
	Boolean:      "BOOLEAN",
	Cardinal:     "CARDINAL",
	LongCardinal: "LONG CARDINAL",
	Integer:      "INTEGER",
	LongInteger:  "LONG INTEGER",
	String:       "STRING",
	Unspecified:  "UNSPECIFIED",
}

// Type is a Courier type expression.
type Type interface{ String() string }

// Prim is a predefined type.
type Prim struct{ Kind PrimKind }

func (p Prim) String() string { return primNames[p.Kind] }

// Sequence is SEQUENCE OF Elem.
type Sequence struct{ Elem Type }

func (s Sequence) String() string { return "SEQUENCE OF " + s.Elem.String() }

// Array is ARRAY N OF Elem.
type Array struct {
	N    int
	Elem Type
}

func (a Array) String() string { return fmt.Sprintf("ARRAY %d OF %s", a.N, a.Elem) }

// Field is one record field or procedure parameter.
type Field struct {
	Name string
	Type Type
}

// Record is RECORD [fields].
type Record struct{ Fields []Field }

func (r Record) String() string {
	var parts []string
	for _, f := range r.Fields {
		parts = append(parts, f.Name+": "+f.Type.String())
	}
	return "RECORD [" + strings.Join(parts, ", ") + "]"
}

// Ref is a reference to a named type.
type Ref struct{ Name string }

func (r Ref) String() string { return r.Name }

// TypeDecl is Name: TYPE = T;
type TypeDecl struct {
	Name string
	Type Type
}

// ErrorDecl is Name: ERROR = n;
type ErrorDecl struct {
	Name string
	Code int
}

// ProcDecl is Name: PROCEDURE [args] RETURNS [results] REPORTS [errs] = n;
type ProcDecl struct {
	Name    string
	Args    []Field
	Results []Field
	Reports []string
	Number  int
}

// Program is a parsed interface specification.
type Program struct {
	Name    string
	Number  int
	Version int
	Types   []TypeDecl
	Errors  []ErrorDecl
	Procs   []ProcDecl
}

// TypeByName returns the declaration of a named type.
func (p *Program) TypeByName(name string) (TypeDecl, bool) {
	for _, t := range p.Types {
		if t.Name == name {
			return t, true
		}
	}
	return TypeDecl{}, false
}

// --- Lexer ---

type token struct {
	text string // keywords and punctuation verbatim; idents and numbers raw
	pos  int
}

func lexIDL(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			// Courier comment to end of line.
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.ContainsRune(":=[],;.()", rune(c)):
			toks = append(toks, token{text: string(c), pos: i})
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, token{text: src[start:i], pos: start})
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				i++
			}
			toks = append(toks, token{text: src[start:i], pos: start})
		default:
			return nil, fmt.Errorf("idl: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{text: "", pos: i}) // EOF
	return toks, nil
}

// --- Parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("idl: expected %q at offset %d, got %q", text, t.pos, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.text == "" || !unicode.IsLetter(rune(t.text[0])) {
		return "", fmt.Errorf("idl: expected identifier at offset %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

func (p *parser) number() (int, error) {
	t := p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("idl: expected number at offset %d, got %q", t.pos, t.text)
	}
	return n, nil
}

// Parse parses a complete Courier program and checks it.
func Parse(src string) (*Program, error) {
	toks, err := lexIDL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}

	if prog.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	if err := p.expect("PROGRAM"); err != nil {
		return nil, err
	}
	if prog.Number, err = p.number(); err != nil {
		return nil, err
	}
	if err := p.expect("VERSION"); err != nil {
		return nil, err
	}
	if prog.Version, err = p.number(); err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	if err := p.expect("BEGIN"); err != nil {
		return nil, err
	}

	for p.peek().text != "END" {
		if p.peek().text == "" {
			return nil, fmt.Errorf("idl: unexpected end of input; missing END.")
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		switch p.peek().text {
		case "TYPE":
			p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			prog.Types = append(prog.Types, TypeDecl{Name: name, Type: t})
		case "ERROR":
			p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			code, err := p.number()
			if err != nil {
				return nil, err
			}
			prog.Errors = append(prog.Errors, ErrorDecl{Name: name, Code: code})
		case "PROCEDURE":
			p.next()
			decl := ProcDecl{Name: name}
			if p.peek().text == "[" {
				fields, err := p.parseFields()
				if err != nil {
					return nil, err
				}
				decl.Args = fields
			}
			if p.peek().text == "RETURNS" {
				p.next()
				fields, err := p.parseFields()
				if err != nil {
					return nil, err
				}
				decl.Results = fields
			}
			if p.peek().text == "REPORTS" {
				p.next()
				if err := p.expect("["); err != nil {
					return nil, err
				}
				for {
					e, err := p.ident()
					if err != nil {
						return nil, err
					}
					decl.Reports = append(decl.Reports, e)
					if p.peek().text != "," {
						break
					}
					p.next()
				}
				if err := p.expect("]"); err != nil {
					return nil, err
				}
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			if decl.Number, err = p.number(); err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, decl)
		default:
			return nil, fmt.Errorf("idl: expected TYPE, ERROR or PROCEDURE at offset %d", p.peek().pos)
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	p.next() // END
	if err := p.expect("."); err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// parseFields parses [name: Type, ...].
func (p *parser) parseFields() ([]Field, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	var fields []Field
	if p.peek().text == "]" {
		p.next()
		return fields, nil
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Name: name, Type: t})
		if p.peek().text != "," {
			break
		}
		p.next()
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	return fields, nil
}

func (p *parser) parseType() (Type, error) {
	t := p.next()
	switch t.text {
	case "BOOLEAN":
		return Prim{Boolean}, nil
	case "CARDINAL":
		return Prim{Cardinal}, nil
	case "INTEGER":
		return Prim{Integer}, nil
	case "STRING":
		return Prim{String}, nil
	case "UNSPECIFIED":
		return Prim{Unspecified}, nil
	case "LONG":
		n := p.next()
		switch n.text {
		case "CARDINAL":
			return Prim{LongCardinal}, nil
		case "INTEGER":
			return Prim{LongInteger}, nil
		default:
			return nil, fmt.Errorf("idl: LONG %q is not a type (offset %d)", n.text, n.pos)
		}
	case "SEQUENCE":
		if err := p.expect("OF"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return Sequence{Elem: elem}, nil
	case "ARRAY":
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect("OF"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return Array{N: n, Elem: elem}, nil
	case "RECORD":
		fields, err := p.parseFields()
		if err != nil {
			return nil, err
		}
		return Record{Fields: fields}, nil
	default:
		if t.text == "" || !unicode.IsLetter(rune(t.text[0])) {
			return nil, fmt.Errorf("idl: expected type at offset %d, got %q", t.pos, t.text)
		}
		return Ref{Name: t.text}, nil
	}
}

// Check validates a program: named type references resolve, no
// recursive types, no duplicate declarations, procedure and error
// numbers unique, reported errors declared.
func Check(prog *Program) error {
	types := map[string]Type{}
	for _, td := range prog.Types {
		if _, dup := types[td.Name]; dup {
			return fmt.Errorf("idl: duplicate type %q", td.Name)
		}
		types[td.Name] = td.Type
	}

	var resolve func(t Type, path []string) error
	resolve = func(t Type, path []string) error {
		switch tt := t.(type) {
		case Prim:
			return nil
		case Sequence:
			return resolve(tt.Elem, path)
		case Array:
			if tt.N <= 0 {
				return fmt.Errorf("idl: array of non-positive size %d", tt.N)
			}
			return resolve(tt.Elem, path)
		case Record:
			seen := map[string]bool{}
			for _, f := range tt.Fields {
				if seen[f.Name] {
					return fmt.Errorf("idl: duplicate field %q", f.Name)
				}
				seen[f.Name] = true
				if err := resolve(f.Type, path); err != nil {
					return err
				}
			}
			return nil
		case Ref:
			for _, p := range path {
				if p == tt.Name {
					return fmt.Errorf("idl: recursive type %q is not supported", tt.Name)
				}
			}
			target, ok := types[tt.Name]
			if !ok {
				return fmt.Errorf("idl: undefined type %q", tt.Name)
			}
			return resolve(target, append(path, tt.Name))
		default:
			return fmt.Errorf("idl: unknown type node %T", t)
		}
	}
	for _, td := range prog.Types {
		if err := resolve(td.Type, []string{td.Name}); err != nil {
			return err
		}
	}

	errNames := map[string]bool{}
	errCodes := map[int]bool{}
	for _, e := range prog.Errors {
		if errNames[e.Name] {
			return fmt.Errorf("idl: duplicate error %q", e.Name)
		}
		if errCodes[e.Code] {
			return fmt.Errorf("idl: duplicate error code %d", e.Code)
		}
		errNames[e.Name] = true
		errCodes[e.Code] = true
	}

	procNames := map[string]bool{}
	procNums := map[int]bool{}
	for _, proc := range prog.Procs {
		if procNames[proc.Name] {
			return fmt.Errorf("idl: duplicate procedure %q", proc.Name)
		}
		if procNums[proc.Number] {
			return fmt.Errorf("idl: duplicate procedure number %d", proc.Number)
		}
		if proc.Number < 0 || proc.Number > 0xFF00 {
			return fmt.Errorf("idl: procedure number %d out of range (reserved numbers begin at 0xFF00)", proc.Number)
		}
		procNames[proc.Name] = true
		procNums[proc.Number] = true
		for _, fs := range [][]Field{proc.Args, proc.Results} {
			for _, f := range fs {
				if err := resolve(f.Type, nil); err != nil {
					return fmt.Errorf("idl: procedure %q: %w", proc.Name, err)
				}
			}
		}
		for _, r := range proc.Reports {
			if !errNames[r] {
				return fmt.Errorf("idl: procedure %q reports undeclared error %q", proc.Name, r)
			}
		}
	}
	return nil
}
