module circus

go 1.22
