package circus

import (
	"math/rand"

	"circus/internal/avail"
	"circus/internal/config"
	"circus/internal/core"
	"circus/internal/thread"
)

// Thread is a distributed thread-of-control context (§3.2). Calls made
// with the same thread and call path are collated by servers as one
// replicated call (§4.3.2).
type Thread = thread.Context

// NewThread starts a fresh distributed thread rooted at this node; the
// usual way to obtain one is Node.Context.
func (n *Node) NewThread() *Thread { return n.rt.NewThread() }

// ReplicaThread constructs the thread context a member of an
// explicitly replicated client uses so that all members' calls carry
// the same thread ID and call path (§7.4). Every member of the troupe
// must pass identical arguments; successive calls on the returned
// context get successive call paths, so members making the same calls
// in the same order stay collated.
func ReplicaThread(threadHost, threadProc uint32, path ...uint32) *Thread {
	return thread.Child(thread.ID{Host: threadHost, Proc: threadProc}, path)
}

// WithThread attaches an explicit thread context to a call (§7.4
// explicit replication; transparent callers use Node.Context instead).
func WithThread(t *Thread) CallOption {
	return func(o *core.CallOptions) { o.Thread = t }
}

// Configuration language and manager (§7.5), re-exported.
type (
	// Machine is one machine of the distributed system with its
	// attribute list (§7.5.2).
	Machine = config.Machine
	// Value is a machine attribute value: string, float64, or bool.
	Value = config.Value
	// TroupeSpec is a parsed troupe specification: troupe(x1..xn)
	// where φ.
	TroupeSpec = config.Spec
	// Spawner instantiates module instances on machines for the
	// configuration manager (§7.5.3).
	Spawner = config.Spawner
	// ConfigManager instantiates and reconfigures troupes from
	// specifications (§7.5.3).
	ConfigManager = config.Manager
)

// ParseSpec parses a troupe specification such as
//
//	troupe(x, y) where x.memory >= 10 and y.has-floating-point
func ParseSpec(src string) (TroupeSpec, error) { return config.Parse(src) }

// SolveSpec finds distinct machines satisfying a specification.
func SolveSpec(spec TroupeSpec, universe []Machine) ([]Machine, error) {
	return config.Solve(spec, universe)
}

// ExtendTroupe solves the troupe extension problem (§7.5.3): a
// satisfying assignment as close as possible to the old one.
func ExtendTroupe(spec TroupeSpec, universe, old []Machine) ([]Machine, error) {
	return config.ExtendTroupe(spec, universe, old)
}

// NewConfigManager returns a configuration manager; the node's binding
// agent client serves as its binder.
func NewConfigManager(spawner Spawner, n *Node, universe []Machine) *ConfigManager {
	return config.NewManager(spawner, n.binder, universe)
}

// Troupe reliability analysis (§6.4.2), re-exported for
// programming-in-the-large decisions about replication degree and
// replacement urgency.

// Availability returns Equation 6.1: the equilibrium probability that
// a troupe of n members with failure rate lambda and repair rate mu is
// functioning.
func Availability(n int, lambda, mu float64) float64 {
	return avail.Availability(n, lambda, mu)
}

// RequiredRepairTime returns Equation 6.2: the largest mean
// replacement time that still achieves availability a given the mean
// member lifetime.
func RequiredRepairTime(n int, lifetime, a float64) float64 {
	return avail.RequiredRepairTime(n, lifetime, a)
}

// SimulateAvailability runs the birth–death Monte-Carlo model of
// Figure 6.3 and returns the observed availability.
func SimulateAvailability(n int, lambda, mu, duration float64, seed int64) float64 {
	res := avail.Simulate(n, lambda, mu, duration, rand.New(rand.NewSource(seed)))
	return res.Availability
}
