package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"circus/internal/bench"
	"circus/internal/meshbench"
	"circus/internal/netsim"
	"circus/internal/pairedmsg"
	"circus/internal/wire"
)

// benchResult is one benchmark measurement in BENCH_<n>.json, the
// machine-readable counterpart of `go test -bench` for CI trend
// tracking.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra carries benchmark-reported metrics beyond the standard
	// three — the throughput suite records "calls/s" and
	// "datagrams/op" here.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type benchDoc struct {
	Go         string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	MaxDegree  int           `json:"max_degree"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func record(name string, r testing.BenchmarkResult) benchResult {
	res := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if len(r.Extra) > 0 {
		res.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			res.Extra[k] = v
		}
	}
	return res
}

type benchRec struct {
	Name  string
	Count uint32
	Tags  []string
	Data  []byte
}

// writeBenchJSON measures the hot-path benchmarks — wire codec,
// paired message exchange, and the native replicated call at degrees
// 1..maxDegree — and writes them to BENCH_<maxDegree>.json in the
// current directory.
func writeBenchJSON(maxDegree int, seed int64) (string, error) {
	doc := benchDoc{
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxDegree: maxDegree,
	}

	var v any = benchRec{Name: "troupe", Count: 3, Tags: []string{"a", "b"}, Data: make([]byte, 64)}
	doc.Benchmarks = append(doc.Benchmarks, record("Marshal", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.Marshal(v); err != nil {
				b.Fatal(err)
			}
		}
	})))

	data, err := wire.Marshal(v)
	if err != nil {
		return "", err
	}
	var out benchRec
	doc.Benchmarks = append(doc.Benchmarks, record("Unmarshal", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := wire.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})))

	if r, err := benchPairedExchange(seed); err != nil {
		return "", err
	} else {
		doc.Benchmarks = append(doc.Benchmarks, r)
	}

	for n := 1; n <= maxDegree; n++ {
		c, err := bench.NewCluster(seed+int64(n), n, 0)
		if err != nil {
			return "", err
		}
		payload := []byte("0123456789abcdef")
		if err := c.Call(payload); err != nil {
			c.Close()
			return "", err
		}
		r := testing.Benchmark(func(b *testing.B) {
			c.Net.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Call(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Net.Stats().Datagrams)/float64(b.N), "datagrams/op")
		})
		c.Close()
		doc.Benchmarks = append(doc.Benchmarks,
			record(fmt.Sprintf("NativeReplicatedCall/degree=%d", n), r))
	}

	// Concurrent-call throughput scaling (BenchmarkThroughput): closed-
	// loop callers against echo troupes over a 1 ms netsim wire. The
	// "calls/s" extra metric is the scaling curve; ns_per_op is
	// wall-time per call at that concurrency.
	for _, degree := range []int{1, 3} {
		for _, callers := range []int{1, 4, 16, 64} {
			c, err := bench.NewCluster(seed+int64(100*degree+callers), degree, time.Millisecond)
			if err != nil {
				return "", err
			}
			if err := c.Call(bench.ThroughputPayload); err != nil {
				c.Close()
				return "", err
			}
			callers := callers
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				c.Net.ResetStats()
				b.ResetTimer()
				if err := c.ConcurrentCalls(callers, b.N); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
				b.ReportMetric(float64(c.Net.Stats().Datagrams)/float64(b.N), "datagrams/op")
			})
			c.Close()
			doc.Benchmarks = append(doc.Benchmarks,
				record(fmt.Sprintf("Throughput/callers=%d/degree=%d", callers, degree), r))
		}
	}

	// Durable-member throughput (BenchmarkThroughputDurable): degree-3
	// troupes whose members append-fsync every call to a WAL on an
	// in-memory disk with a 50 µs fsync. The "fsyncs/op" extra metric
	// shows the group commit: ≈3 (one per member) for a single caller,
	// falling well below the degree as concurrent callers share rounds.
	for _, callers := range []int{1, 16, 64} {
		c, err := bench.NewDurableCluster(seed+int64(200+callers), 3, time.Millisecond, 50*time.Microsecond)
		if err != nil {
			return "", err
		}
		if err := c.Call(bench.ThroughputPayload); err != nil {
			c.Close()
			return "", err
		}
		callers := callers
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.Net.ResetStats()
			base := c.Fsyncs()
			b.ResetTimer()
			if err := c.ConcurrentCalls(callers, b.N); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
			b.ReportMetric(float64(c.Fsyncs()-base)/float64(b.N), "fsyncs/op")
		})
		c.Close()
		doc.Benchmarks = append(doc.Benchmarks,
			record(fmt.Sprintf("ThroughputDurable/callers=%d/degree=3", callers), r))
	}

	// Kernel-transport shard scaling: closed-loop calls/s at 16 callers
	// against a degree-3 echo troupe over real sharded loopback UDP —
	// no netsim, so datagrams ride recvmmsg drain loops, pooled
	// buffers, SPSC rings, and (when the kernel grants it) io_uring.
	// The shard sweep (1/2/4/NumCPU) is the scaling table; "calls/s",
	// "shards", and "io_uring" land in extra.
	for _, shards := range bench.TransportShardCounts() {
		c, uring, err := bench.NewUDPCluster(3, shards)
		if err != nil {
			return "", err
		}
		if err := c.Call(bench.ThroughputPayload); err != nil {
			c.Close()
			return "", err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.ConcurrentCalls(16, b.N); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
		})
		c.Close()
		res := record(fmt.Sprintf("TransportUDP/shards=%d/callers=16/degree=3", shards), r)
		if res.Extra == nil {
			res.Extra = make(map[string]float64, 2)
		}
		res.Extra["shards"] = float64(shards)
		if uring {
			res.Extra["io_uring"] = 1
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}

	// Partitioned-mesh scale-out: closed-loop keyed reads/s through
	// routing mesh clients against 1/2/4/8 consistent-hash shards of
	// degree-3 guarded stores, at the network-bound operating point of
	// meshbench.MeshScaling (1 Mb/s member links, 128 B values, 32 callers
	// over 16 client runtimes). The committed curve is the scale-out
	// gate: the 4-shard "calls/s" must stay ≥ 3× the 1-shard figure.
	for _, shards := range meshbench.MeshShardCounts() {
		c, err := meshbench.NewMeshCluster(seed+int64(300+shards), shards, 3, 16)
		if err != nil {
			return "", err
		}
		if err := c.Preload(meshbench.MeshKeyspace); err != nil {
			c.Close()
			return "", err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.ConcurrentGets(32, b.N, meshbench.MeshKeyspace); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
		})
		c.Close()
		res := record(fmt.Sprintf("MeshScale/shards=%d/degree=3/callers=32", shards), r)
		if res.Extra == nil {
			res.Extra = make(map[string]float64, 2)
		}
		res.Extra["shards"] = float64(shards)
		res.Extra["read_frac"] = 1
		doc.Benchmarks = append(doc.Benchmarks, res)
	}

	// Read-path scale-out: single-shard degree-3 keyed reads at 16
	// closed-loop callers, once over the strict quorum read (every
	// member serializes the value onto its downlink) and once over the
	// spread read (one member per read, position-token checked). The
	// committed pair is the read-scaling gate: the spread "calls/s"
	// must stay ≥ 2× the quorum figure, and -read-smoke re-measures
	// both against it.
	for _, mode := range []string{"quorum", "spread"} {
		c, err := meshbench.NewMeshCluster(seed+int64(500), 1, 3, 16)
		if err != nil {
			return "", err
		}
		if err := c.Preload(meshbench.MeshKeyspace); err != nil {
			c.Close()
			return "", err
		}
		w := meshbench.Workload{ReadFrac: 1, Spread: mode == "spread", Seed: seed}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.ConcurrentOps(16, b.N, meshbench.MeshKeyspace, w); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
		})
		c.Close()
		res := record(fmt.Sprintf("MeshRead/path=%s/shards=1/degree=3/callers=16", mode), r)
		if res.Extra == nil {
			res.Extra = make(map[string]float64, 1)
		}
		res.Extra["read_frac"] = 1
		doc.Benchmarks = append(doc.Benchmarks, res)
	}

	// The same mesh over real sharded loopback UDP (2 SO_REUSEPORT
	// shards per endpoint): no simulated bandwidth cap, so this row
	// tracks routing-path dispatch cost rather than wire scale-out.
	for _, shards := range []int{1, 4} {
		c, err := meshbench.NewMeshClusterUDP(seed+int64(400+shards), shards, 3, 8, 2)
		if err != nil {
			return "", err
		}
		if err := c.Preload(meshbench.MeshKeyspace); err != nil {
			c.Close()
			return "", err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.ConcurrentGets(32, b.N, meshbench.MeshKeyspace); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
		})
		c.Close()
		res := record(fmt.Sprintf("MeshScaleUDP/shards=%d/degree=3/callers=32", shards), r)
		if res.Extra == nil {
			res.Extra = make(map[string]float64, 1)
		}
		res.Extra["shards"] = float64(shards)
		doc.Benchmarks = append(doc.Benchmarks, res)
	}

	path := fmt.Sprintf("BENCH_%d.json", maxDegree)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// benchPairedExchange measures one reliable call/return exchange at the
// paired message layer, mirroring BenchmarkPairedMessageExchange.
func benchPairedExchange(seed int64) (benchResult, error) {
	net := netsim.New(seed)
	epA, err := net.Listen(net.NewHost(), 0)
	if err != nil {
		return benchResult{}, err
	}
	epB, err := net.Listen(net.NewHost(), 0)
	if err != nil {
		return benchResult{}, err
	}
	opts := pairedmsg.Options{RetransmitInterval: 50 * time.Millisecond}
	ca, cb := pairedmsg.New(epA, opts), pairedmsg.New(epB, opts)
	defer ca.Close()
	defer cb.Close()

	go func() {
		for m := range cb.Incoming() {
			if m.Type == pairedmsg.Call {
				cb.StartSend(m.From, pairedmsg.Return, m.CallNum, m.Data)
			}
		}
	}()

	payload := []byte("0123456789abcdef")
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cn := ca.NextCallNum(epB.Addr())
			if err := ca.Send(context.Background(), epB.Addr(), pairedmsg.Call, cn, payload); err != nil {
				b.Fatal(err)
			}
			m := <-ca.Incoming()
			if m.CallNum != cn {
				b.Fatal("mismatched return")
			}
		}
	})
	return record("PairedMessageExchange", r), nil
}
