package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"circus/internal/meshbench"
)

// readSmokeTolerance is how far mesh read throughput may fall below
// the committed baseline before the smoke check fails: the spread-read
// path exists to make reads scale with the replication degree, and a
// quiet 25% throughput regression would erase that long before any
// correctness signal noticed.
const readSmokeTolerance = 1.25

// runReadSmoke re-measures reads/s for every MeshRead entry of a
// committed BENCH_<n>.json and returns an error naming each path whose
// throughput regressed beyond the tolerance. Like the packet smoke it
// is a smoke test, not a benchmark: one short burst per path, compared
// against the committed "calls/s" figure.
func runReadSmoke(baselinePath string, seed int64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}

	var failures []string
	checked := 0
	for _, base := range doc.Benchmarks {
		want, ok := base.Extra["calls/s"]
		if !ok || !strings.HasPrefix(base.Name, "MeshRead/") {
			continue
		}
		parts := strings.Split(strings.TrimPrefix(base.Name, "MeshRead/path="), "/")
		if len(parts) != 4 {
			continue
		}
		mode := parts[0]
		var shards, degree, callers int
		if _, err := fmt.Sscanf(strings.Join(parts[1:], "/"), "shards=%d/degree=%d/callers=%d", &shards, &degree, &callers); err != nil {
			continue
		}
		got, err := measureReadThroughput(seed, mode, shards, degree, callers)
		if err != nil {
			return fmt.Errorf("%s: %w", base.Name, err)
		}
		checked++
		status := "ok"
		if got < want/readSmokeTolerance {
			status = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("%s: %.0f reads/s vs baseline %.0f (floor %.0f)",
					base.Name, got, want, want/readSmokeTolerance))
		}
		fmt.Printf("read-smoke %-44s baseline %8.0f  measured %8.0f  %s\n",
			base.Name, want, got, status)
	}
	if checked == 0 {
		return fmt.Errorf("%s holds no MeshRead calls/s entries to compare", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("read throughput regressed beyond %.0f%% of baseline:\n  %s",
			(readSmokeTolerance-1)*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// measureReadThroughput runs one short read-only burst at the MeshRead
// operating point and reports reads per second.
func measureReadThroughput(seed int64, mode string, shards, degree, callers int) (float64, error) {
	total := 120 * callers
	if total < 500 {
		total = 500
	}
	return meshbench.MeshThroughput(seed+500, shards, degree, callers, 16, total,
		meshbench.Workload{ReadFrac: 1, Spread: mode == "spread", Seed: seed})
}
