// Experiments regenerates every table and figure of the dissertation's
// evaluation, printing model/measured rows beside the paper's
// published numbers. EXPERIMENTS.md records a snapshot of this output.
//
//	go run ./cmd/experiments             # everything
//	go run ./cmd/experiments -run table4.1
//
// Experiment IDs: table4.1 table4.2 table4.3 figure4.8 multicast
// eq5.1 figure5.1 figure6.3 ablation native throughput transport mesh
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"circus/internal/bench"
	"circus/internal/meshbench"
	"circus/internal/trace"
)

type experiment struct {
	id  string
	run func() (string, error)
}

func main() {
	runID := flag.String("run", "", "run only the experiment with this ID")
	seed := flag.Int64("seed", 1985, "random seed for Monte-Carlo experiments")
	quick := flag.Bool("quick", false, "smaller iteration counts")
	traceFile := flag.String("trace", "", "write a JSONL protocol trace of the native experiments to this file")
	benchJSON := flag.Int("bench-json", 0, "measure hot-path benchmarks up to this replication degree, write BENCH_<n>.json, and exit")
	packetSmoke := flag.String("packet-smoke", "", "re-measure throughput datagrams/op against this committed BENCH_<n>.json and exit nonzero on a >25% regression")
	allocSmoke := flag.String("alloc-smoke", "", "re-measure replicated-call allocs/op against this committed BENCH_<n>.json and exit nonzero on a >15% regression")
	readSmoke := flag.String("read-smoke", "", "re-measure mesh read throughput against this committed BENCH_<n>.json and exit nonzero on a >25% regression")
	readFrac := flag.Float64("read-frac", 1, "read fraction of the mesh scale-out experiment's workload")
	mutexProf := flag.String("mutexprofile", "", "record runtime mutex contention during the run and write the profile to this file")
	cpuProf := flag.String("cpuprofile", "", "record a CPU profile during the run and write it to this file")
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *mutexProf != "" {
		// Sample every blocking mutex event: the experiments are short,
		// and the point is to see whether the message/dispatch paths
		// still serialize on shared locks under concurrent load.
		runtime.SetMutexProfileFraction(1)
		defer writeMutexProfile(*mutexProf)
	}

	if *benchJSON > 0 {
		path, err := writeBenchJSON(*benchJSON, *seed)
		if err != nil {
			log.Fatalf("bench-json: %v", err)
		}
		fmt.Println("wrote", path)
		return
	}

	if *packetSmoke != "" {
		if err := runPacketSmoke(*packetSmoke, *seed); err != nil {
			log.Fatalf("packet-smoke: %v", err)
		}
		fmt.Println("packet-smoke: datagrams/op within bounds of the committed baseline")
		return
	}

	if *allocSmoke != "" {
		if err := runAllocSmoke(*allocSmoke, *seed); err != nil {
			log.Fatalf("alloc-smoke: %v", err)
		}
		fmt.Println("alloc-smoke: allocs/op within bounds of the committed baseline")
		return
	}

	if *readSmoke != "" {
		if err := runReadSmoke(*readSmoke, *seed); err != nil {
			log.Fatalf("read-smoke: %v", err)
		}
		fmt.Println("read-smoke: mesh read throughput within bounds of the committed baseline")
		return
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatalf("creating trace file: %v", err)
		}
		jsonl := trace.NewJSONL(f)
		defer func() {
			if err := jsonl.Close(); err != nil {
				log.Printf("writing trace: %v", err)
			}
		}()
		bench.Trace = jsonl
	}

	trials := 200000
	callIters, bcast := 200, 40
	if *quick {
		trials = 20000
		callIters, bcast = 30, 10
	}

	experiments := []experiment{
		{"table4.1", func() (string, error) { return bench.Table41(), nil }},
		{"table4.2", func() (string, error) { return bench.Table42(), nil }},
		{"table4.3", func() (string, error) { return bench.Table43(), nil }},
		{"figure4.8", func() (string, error) { return bench.Figure48(), nil }},
		{"multicast", func() (string, error) { return bench.MulticastAnalysis(*seed), nil }},
		{"eq5.1", func() (string, error) { return bench.Eq51(*seed, trials), nil }},
		{"figure5.1", func() (string, error) {
			return bench.OrderedBroadcastNative(*seed, 3, 3, bcast)
		}},
		{"figure6.3", func() (string, error) { return bench.Figure63(*seed), nil }},
		{"ablation", func() (string, error) {
			a := bench.CollatorAblation(*seed)
			b, err := bench.WaitPolicyNative(*seed, callIters/4)
			if err != nil {
				return "", err
			}
			c, err := bench.MulticastAblation(*seed, callIters/2)
			if err != nil {
				return "", err
			}
			d, err := bench.RetransmitAblation(*seed, callIters/10)
			if err != nil {
				return "", err
			}
			return a + "\n" + b + "\n" + c + "\n" + d, nil
		}},
		{"native", func() (string, error) {
			return bench.NativeReplicatedCall(*seed, []int{1, 2, 3, 4, 5}, callIters)
		}},
		{"throughput", func() (string, error) {
			return bench.ThroughputTable(*seed, callIters/2)
		}},
		{"transport", func() (string, error) {
			return bench.TransportScaling(16, 3, callIters*10)
		}},
		{"mesh", func() (string, error) {
			return meshbench.MeshScaling(*seed, 3, 32, 16, callIters*10, *readFrac)
		}},
		{"spread", func() (string, error) {
			return meshbench.MeshSpreadScaling(*seed, 3, 16, 16, callIters*10)
		}},
	}

	ran := 0
	for _, e := range experiments {
		if *runID != "" && e.id != *runID {
			continue
		}
		out, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Printf("==== %s %s\n%s\n", e.id, strings.Repeat("=", 60-len(e.id)), out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runID)
		os.Exit(2)
	}
}

// writeMutexProfile dumps the accumulated mutex-contention profile.
// It runs deferred from main, so any experiment (or the bench-json
// mode) can be profiled by adding -mutexprofile.
func writeMutexProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Printf("mutexprofile: %v", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
		log.Printf("mutexprofile: %v", err)
		return
	}
	fmt.Println("wrote", path)
}
