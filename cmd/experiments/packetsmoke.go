package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"circus/internal/bench"
)

// packetSmokeTolerance is how far datagrams/op may drift above the
// committed baseline before the smoke check fails: wire economy is a
// first-class performance property, and a quiet 25% regression in
// packet count would erase it long before latency noticed.
const packetSmokeTolerance = 1.25

// runPacketSmoke re-measures datagrams/op for every Throughput entry
// of a committed BENCH_<n>.json and returns an error naming each
// benchmark whose packet count regressed beyond the tolerance. It is
// a smoke test, not a benchmark: iteration counts are small and only
// the datagram metric — which is deterministic up to retransmission
// noise — is compared.
func runPacketSmoke(baselinePath string, seed int64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}

	var failures []string
	checked := 0
	for _, base := range doc.Benchmarks {
		want, ok := base.Extra["datagrams/op"]
		if !ok || !strings.HasPrefix(base.Name, "Throughput/") {
			continue
		}
		var callers, degree int
		if _, err := fmt.Sscanf(base.Name, "Throughput/callers=%d/degree=%d", &callers, &degree); err != nil {
			continue
		}
		got, err := measureDatagramsPerCall(seed, callers, degree)
		if err != nil {
			return fmt.Errorf("%s: %w", base.Name, err)
		}
		checked++
		status := "ok"
		if got > want*packetSmokeTolerance {
			status = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("%s: %.2f datagrams/op vs baseline %.2f (limit %.2f)",
					base.Name, got, want, want*packetSmokeTolerance))
		}
		fmt.Printf("packet-smoke %-32s baseline %6.2f  measured %6.2f  %s\n",
			base.Name, want, got, status)
	}
	if checked == 0 {
		return fmt.Errorf("%s holds no Throughput datagrams/op entries to compare", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("datagrams/op regressed beyond %.0f%% of baseline:\n  %s",
			(packetSmokeTolerance-1)*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// measureDatagramsPerCall runs a short closed-loop throughput burst —
// the BenchmarkThroughput workload — and reports datagrams per call.
func measureDatagramsPerCall(seed int64, callers, degree int) (float64, error) {
	c, err := bench.NewCluster(seed+int64(100*degree+callers), degree, time.Millisecond)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Call(bench.ThroughputPayload); err != nil {
		return 0, err
	}
	calls := 50 * callers
	if calls < 200 {
		calls = 200
	}
	c.Net.ResetStats()
	if err := c.ConcurrentCalls(callers, calls); err != nil {
		return 0, err
	}
	return float64(c.Net.Stats().Datagrams) / float64(calls), nil
}
