package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"circus/internal/bench"
)

// allocSmokeTolerance is how far allocs/op may drift above the
// committed baseline before the smoke check fails. Allocation counts
// are exact (no wall-clock noise), so 15% of headroom absorbs only
// legitimate variation — map growth thresholds, pool warm-up — and a
// real regression on the replicated-call hot path fails loudly.
const allocSmokeTolerance = 1.15

// runAllocSmoke re-measures allocs/op for every NativeReplicatedCall
// entry of a committed BENCH_<n>.json and returns an error naming each
// degree whose allocation count regressed beyond the tolerance. The
// zero-alloc receive path and the pooled call structures are the
// hard-won part of the transport tier; this gate keeps them from
// eroding one innocent allocation at a time.
func runAllocSmoke(baselinePath string, seed int64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parsing %s: %w", baselinePath, err)
	}

	var failures []string
	checked := 0
	for _, base := range doc.Benchmarks {
		var degree int
		if _, err := fmt.Sscanf(base.Name, "NativeReplicatedCall/degree=%d", &degree); err != nil {
			continue
		}
		got, err := measureAllocsPerCall(seed, degree)
		if err != nil {
			return fmt.Errorf("%s: %w", base.Name, err)
		}
		checked++
		limit := int64(float64(base.AllocsPerOp) * allocSmokeTolerance)
		status := "ok"
		if got > limit {
			status = "REGRESSED"
			failures = append(failures,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d (limit %d)",
					base.Name, got, base.AllocsPerOp, limit))
		}
		fmt.Printf("alloc-smoke %-32s baseline %4d  measured %4d  %s\n",
			base.Name, base.AllocsPerOp, got, status)
	}
	if checked == 0 {
		return fmt.Errorf("%s holds no NativeReplicatedCall entries to compare", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocs/op regressed beyond %.0f%% of baseline:\n  %s",
			(allocSmokeTolerance-1)*100, strings.Join(failures, "\n  "))
	}
	return nil
}

// measureAllocsPerCall runs the BenchmarkNativeReplicatedCall workload
// — serial replicated echo calls on a zero-delay netsim cluster — and
// reports allocations per call.
func measureAllocsPerCall(seed int64, degree int) (int64, error) {
	c, err := bench.NewCluster(seed+int64(degree), degree, 0)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	payload := []byte("0123456789abcdef")
	if err := c.Call(payload); err != nil {
		return 0, err
	}
	var callErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := c.Call(payload); err != nil {
				callErr = err
				b.FailNow()
			}
		}
	})
	if callErr != nil {
		return 0, callErr
	}
	return r.AllocsPerOp(), nil
}
