package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMultiProcessEndToEnd drives the stack across real OS processes
// over UDP — the paper's deployment environment (repro: multi-process
// on one machine): a ringmaster process, two replica processes, and
// client invocations, each a separate process.
func TestMultiProcessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	kvBin := filepath.Join(dir, "circus-kv")
	rmBin := filepath.Join(dir, "ringmaster")

	build := func(out, pkg string) {
		t.Helper()
		cmd := exec.Command("go", "build", "-o", out, pkg)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, msg)
		}
	}
	build(kvBin, "circus/cmd/circus-kv")
	build(rmBin, "circus/cmd/ringmaster")

	// Start the binding agent on an ephemeral port and parse its
	// address from stdout.
	rm := exec.Command(rmBin, "-port", "0")
	rmOut, err := rm.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rm.Process.Kill(); rm.Wait() })

	binderAddr := ""
	scanner := bufio.NewScanner(rmOut)
	re := regexp.MustCompile(`serving at (\d+\.\d+\.\d+\.\d+:\d+)`)
	deadline := time.After(30 * time.Second)
	lineCh := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			if m := re.FindStringSubmatch(scanner.Text()); m != nil {
				lineCh <- m[1]
				return
			}
		}
	}()
	select {
	case binderAddr = <-lineCh:
	case <-deadline:
		t.Fatal("ringmaster never announced its address")
	}

	// Two replica processes.
	var replicas []*exec.Cmd
	for i := 0; i < 2; i++ {
		serve := exec.Command(kvBin, "-binder", binderAddr, "serve")
		out, err := serve.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := serve.Start(); err != nil {
			t.Fatal(err)
		}
		proc := serve
		t.Cleanup(func() { proc.Process.Kill(); proc.Wait() })
		replicas = append(replicas, serve)

		ready := make(chan struct{})
		go func() {
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				if strings.Contains(sc.Text(), "replica serving") {
					close(ready)
					return
				}
			}
		}()
		select {
		case <-ready:
		case <-time.After(30 * time.Second):
			t.Fatalf("replica %d never came up", i)
		}
	}

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(kvBin, append([]string{"-binder", binderAddr}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	if out := run("put", "color", "red"); !strings.Contains(out, "2 replicas unanimous") {
		t.Fatalf("put output: %q", out)
	}
	if out := strings.TrimSpace(run("get", "color")); out != "red" {
		t.Fatalf("get = %q", out)
	}
	if out := run("members"); !strings.Contains(out, "degree 2") {
		t.Fatalf("members: %q", out)
	}

	// Kill one replica: the service must keep answering (partial
	// failure masked across OS processes).
	replicas[0].Process.Kill()
	replicas[0].Wait()
	if out := strings.TrimSpace(run("get", "color")); out != "red" {
		t.Fatalf("get after replica kill = %q", out)
	}

	// A replacement process joins with state transfer and serves the
	// existing key.
	serve := exec.Command(kvBin, "-binder", binderAddr, "serve")
	out3, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serve.Process.Kill(); serve.Wait() })
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(out3)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "replica serving") {
				close(ready)
				return
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatal("replacement replica never came up")
	}
	if out := strings.TrimSpace(run("get", "color")); out != "red" {
		t.Fatalf("get after rejoin = %q (all live members must answer unanimously)", out)
	}
	fmt.Println("multi-process lifecycle complete")
}
