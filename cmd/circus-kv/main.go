// Circus-kv is a replicated key-value service for driving the stack
// across real OS processes on one machine (the paper's deployment
// environment, §4.4.1). Run a binding agent, any number of replicas,
// and clients, each in its own process:
//
//	# terminal 1: the binding agent
//	go run ./cmd/ringmaster -port 911
//
//	# terminals 2..4: three replicas (state transfer on join)
//	go run ./cmd/circus-kv -binder 127.0.0.1:911 serve
//
//	# terminal 5: use it
//	go run ./cmd/circus-kv -binder 127.0.0.1:911 put color red
//	go run ./cmd/circus-kv -binder 127.0.0.1:911 get color
//	go run ./cmd/circus-kv -binder 127.0.0.1:911 members
//
// Kill a replica mid-session: gets and puts keep working (partial
// failures masked); start a new one and it joins with state transfer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"circus"
)

const serviceName = "circus-kv"

// kvArgs is the wire format of put/get arguments.
type kvArgs struct {
	K string
	V string
}

// kv is the replicated module: an ordinary map with deterministic
// state transitions and sorted state transfer.
type kv struct {
	mu   sync.Mutex
	data map[string]string
}

func newKV() *kv { return &kv{data: map[string]string{}} }

func (m *kv) Dispatch(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
	var a kvArgs
	if err := circus.Unmarshal(args, &a); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch proc {
	case 1: // put
		m.data[a.K] = a.V
		return circus.Marshal(uint32(len(m.data)))
	case 2: // get
		v, ok := m.data[a.K]
		if !ok {
			return nil, &circus.AppError{Msg: "no such key: " + a.K}
		}
		return circus.Marshal(v)
	case 3: // del
		delete(m.data, a.K)
		return circus.Marshal(uint32(len(m.data)))
	case 4: // list
		keys := make([]string, 0, len(m.data))
		for k := range m.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return circus.Marshal(keys)
	default:
		return nil, circus.ErrNoSuchProc
	}
}

func (m *kv) GetState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return circus.Marshal(m.data)
}

func (m *kv) SetState(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = map[string]string{}
	return circus.Unmarshal(b, &m.data)
}

func parseBinder(s string) ([]circus.ModuleAddr, error) {
	var members []circus.ModuleAddr
	for _, part := range strings.Split(s, ",") {
		host, portStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("binder address %q is not host:port", part)
		}
		var ip uint32
		for _, oct := range strings.SplitN(host, ".", 4) {
			n, err := strconv.Atoi(oct)
			if err != nil || n < 0 || n > 255 {
				return nil, fmt.Errorf("bad binder host %q", host)
			}
			ip = ip<<8 | uint32(n)
		}
		port, err := strconv.Atoi(portStr)
		if err != nil {
			return nil, fmt.Errorf("bad binder port %q", portStr)
		}
		members = append(members, circus.ModuleAddr{
			Addr: circus.Addr{Host: ip, Port: uint16(port)},
		})
	}
	return members, nil
}

func main() {
	binder := flag.String("binder", "127.0.0.1:911", "comma-separated binding agent addresses")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: circus-kv [-binder host:port[,host:port]] serve | put K V | get K | del K | list | members | gc")
		os.Exit(2)
	}
	boot, err := parseBinder(*binder)
	if err != nil {
		log.Fatal(err)
	}
	node, err := circus.ListenUDP(0, circus.WithBinder(boot))
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch cmd := flag.Arg(0); cmd {
	case "serve":
		addr, err := node.JoinTroupe(ctx, serviceName, newKV())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica serving at %v (joined troupe %q; state transferred if peers existed)\n",
			addr.Addr, serviceName)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	case "put", "get", "del":
		if flag.NArg() < 2 {
			log.Fatalf("%s needs a key", cmd)
		}
		stub, err := node.Import(ctx, serviceName)
		if err != nil {
			log.Fatal(err)
		}
		a := kvArgs{K: flag.Arg(1)}
		proc := map[string]uint16{"put": 1, "get": 2, "del": 3}[cmd]
		if cmd == "put" {
			if flag.NArg() < 3 {
				log.Fatal("put needs a value")
			}
			a.V = flag.Arg(2)
		}
		args, _ := circus.Marshal(a)
		res, err := stub.Call(node.Context(ctx), proc, args)
		if err != nil {
			log.Fatal(err)
		}
		switch cmd {
		case "get":
			var v string
			circus.Unmarshal(res, &v)
			fmt.Println(v)
		default:
			var n uint32
			circus.Unmarshal(res, &n)
			fmt.Printf("ok (%d keys, %d replicas unanimous)\n", n, stub.Troupe().Degree())
		}
	case "list":
		stub, err := node.Import(ctx, serviceName)
		if err != nil {
			log.Fatal(err)
		}
		args, _ := circus.Marshal(kvArgs{})
		res, err := stub.Call(node.Context(ctx), 4, args)
		if err != nil {
			log.Fatal(err)
		}
		var keys []string
		circus.Unmarshal(res, &keys)
		for _, k := range keys {
			fmt.Println(k)
		}
	case "members":
		stub, err := node.Import(ctx, serviceName)
		if err != nil {
			log.Fatal(err)
		}
		t := stub.Troupe()
		fmt.Printf("troupe %v, degree %d\n", t.ID, t.Degree())
		for _, m := range t.Members {
			fmt.Printf("  %v\n", m)
		}
	case "gc":
		removed, err := node.GarbageCollect(ctx, 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("removed %d unreachable members\n", removed)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
