// Command chaos runs seeded fault campaigns against a replicated
// key-value troupe on the simulated internet and checks the
// survivability invariants after each: replica state convergence,
// exactly-once execution per replicated call, and no acknowledged
// update lost. It exits nonzero if any campaign finds a violation.
//
// With -durable every member write-ahead logs its acked writes to an
// injected disk, crashes become power losses (page cache discarded,
// log tail possibly torn), and the schedule adds disk faults; with
// -restart-all the campaign additionally power-fails the entire
// troupe at once — survivable only because of the logs.
//
// With -shards N (N > 1) the campaign runs against a partitioned
// mesh instead of a single troupe: N consistent-hash shards of
// -servers members each behind ownership guards, clients routing by
// key through the epoch-versioned shard map, per-shard repairmen, a
// live split migrating a range onto a spare shard mid-campaign, and
// whole-shard kills and partitions joining the fault schedule.
//
// With -explore the command runs deterministic schedule exploration
// instead of fault campaigns: a seeded search over message delivery
// interleavings of the commit-protocol and repair-window scenarios.
// A violating schedule prints its seed and decision list; re-running
// with -seed <n> -schedules 1 replays it exactly.
//
// Usage:
//
//	go run ./cmd/chaos -seeds 20
//	go run ./cmd/chaos -seed 7 -servers 5 -clients 4 -v
//	go run ./cmd/chaos -seeds 5 -trace /tmp/traces   # seed<N>.jsonl per campaign
//	go run ./cmd/chaos -seeds 10 -durable -restart-all
//	go run ./cmd/chaos -seeds 5 -shards 2 -durable -linearize
//	go run ./cmd/chaos -seeds 5 -shards 2 -linearize -spread-reads -zipf 1.2
//	go run ./cmd/chaos -explore -schedules 10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"circus/internal/chaos"
	"circus/internal/netsim/explore"
	"circus/internal/trace"
)

// runExplore searches delivery schedules of every exploration scenario
// and reports the first violating interleaving, if any. Returns true
// if a violation was found.
func runExplore(seed int64, schedules int, verbose bool) bool {
	scenarios := []explore.Scenario{explore.RebindScenario{}, explore.BroadcastScenario{}}
	violated := false
	for _, sc := range scenarios {
		opts := explore.Options{Seed: seed, Schedules: schedules}
		if verbose {
			opts.Log = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		rep, err := explore.Run(sc, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explore %s: %v\n", sc.Name(), err)
			os.Exit(1)
		}
		status := "ok"
		if rep.Violating != nil {
			status = "VIOLATED"
			violated = true
		}
		fmt.Printf("explore %-10s %-8s schedules=%-3d steps=%d\n",
			sc.Name(), status, rep.Explored, rep.TotalSteps)
		if s := rep.Violating; s != nil {
			fmt.Printf("    violating schedule: seed %d (replay with -explore -seed %d -schedules 1)\n", s.Seed, s.Seed)
			for _, d := range s.Decisions {
				fmt.Printf("    %s\n", d)
			}
			for _, v := range s.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
	}
	return violated
}

func main() {
	var (
		seeds      = flag.Int("seeds", 1, "run campaigns for seeds 1..N")
		seed       = flag.Int64("seed", 0, "run a single campaign with this seed (overrides -seeds)")
		servers    = flag.Int("servers", 3, "KV troupe degree")
		shards     = flag.Int("shards", 1, "consistent-hash shards; above 1 runs the partitioned-mesh campaign with a live split")
		clients    = flag.Int("clients", 3, "concurrent client processes")
		ops        = flag.Int("ops", 20, "minimum put operations per client caller")
		callers    = flag.Int("callers", 1, "concurrent caller goroutines per client process")
		monitored  = flag.Bool("monitor", false, "run the online runtime monitor live against each campaign's trace stream")
		monSample  = flag.Int("monitor-sample", 0, "monitor 1-in-N identity sampling rate (0 = observe everything)")
		linearize  = flag.Bool("linearize", false, "interleave reads and check the operation history for per-key linearizability")
		spread     = flag.Bool("spread-reads", false, "route the linearized reads through the mesh spread-read path (one member per read, position tokens); requires -shards > 1 and -linearize")
		readFrac   = flag.Float64("read-frac", 0.5, "probability each caller follows a write with a read (with -linearize)")
		zipf       = flag.Float64("zipf", 0, "Zipfian exponent (>1) skewing read-key popularity toward a few hot keys; 0 = uniform")
		plantStale = flag.Bool("plant-stale-read", false, "plant the stale-read guard defect; the campaign must catch it and report VIOLATED (with -spread-reads)")
		durable    = flag.Bool("durable", false, "write-ahead log every member; crashes become power losses, disk faults join the schedule")
		restartAll = flag.Bool("restart-all", false, "power-fail the whole troupe at once mid-campaign (requires -durable)")
		snapEvery  = flag.Int("snapshot-every", 64, "snapshot cadence in log records (durable mode)")
		verbose    = flag.Bool("v", false, "log schedule events and repair actions")
		traceDir   = flag.String("trace", "", "write per-seed JSONL traces (seed<N>.jsonl) into this directory")
		exploreRun = flag.Bool("explore", false, "run deterministic schedule exploration instead of fault campaigns")
		schedules  = flag.Int("schedules", 10, "delivery schedules to search per exploration scenario (with -explore)")
	)
	flag.Parse()

	if *exploreRun {
		first := int64(1)
		if *seed != 0 {
			first = *seed
		}
		if runExplore(first, *schedules, *verbose) {
			os.Exit(1)
		}
		return
	}

	if *restartAll && !*durable {
		fmt.Fprintln(os.Stderr, "chaos: -restart-all requires -durable (a whole-troupe power loss without logs loses everything)")
		os.Exit(2)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: creating trace dir: %v\n", err)
			os.Exit(1)
		}
	}

	var list []int64
	if *seed != 0 {
		list = []int64{*seed}
	} else {
		for s := int64(1); s <= int64(*seeds); s++ {
			list = append(list, s)
		}
	}

	violated := false
	var totals struct {
		acked, failed            int
		retries, rebinds         int64
		suspected                int64
		removed, rejoined, viols int
		recoveries               int
		deltaBytes, fullBytes    int64
		fsyncs, snapshots        uint64
	}
	for _, s := range list {
		cfg := chaos.Config{Seed: s, Servers: *servers, Shards: *shards, Clients: *clients, Ops: *ops, Callers: *callers,
			Durable: *durable, RestartAll: *restartAll, SnapshotEvery: *snapEvery,
			Monitor: *monitored, MonitorSample: *monSample, Linearize: *linearize,
			SpreadReads: *spread, ReadFrac: *readFrac, Zipf: *zipf, PlantStaleReadBug: *plantStale}
		if *verbose {
			cfg.Log = func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			}
		}
		var jsonl *trace.JSONL
		if *traceDir != "" {
			f, err := os.Create(filepath.Join(*traceDir, fmt.Sprintf("seed%d.jsonl", s)))
			if err != nil {
				fmt.Fprintf(os.Stderr, "chaos: creating trace file: %v\n", err)
				os.Exit(1)
			}
			jsonl = trace.NewJSONL(f)
			cfg.Trace = jsonl
		}
		res, err := chaos.Run(cfg)
		if jsonl != nil {
			if cerr := jsonl.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "seed %d: writing trace: %v\n", s, cerr)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: campaign failed to run: %v\n", s, err)
			os.Exit(1)
		}
		status := "ok"
		if len(res.Violations) > 0 {
			status = "VIOLATED"
			violated = true
		}
		fmt.Printf("seed %-4d %-8s events=%-2d acked=%-4d failed=%-3d retries=%-3d rebinds=%-3d suspected=%-3d removed=%d rejoined=%d",
			s, status, len(res.Schedule.Events), res.Acked, res.Failed,
			res.Retries, res.Rebinds, res.Suspected, res.Removed, res.Rejoined)
		if *durable {
			fmt.Printf(" recoveries=%d fsyncs=%d snapshots=%d delta=%d/%dB full=%d/%dB",
				res.Recoveries, res.Fsyncs, res.Snapshots,
				res.DeltaTransfers, res.DeltaBytes, res.FullTransfers, res.FullBytes)
		}
		if *shards > 1 {
			fmt.Printf(" redirects=%d parks=%d refreshes=%d rollbacks=%d",
				res.Redirects, res.Parks, res.MapRefreshes, res.SplitRollbacks)
		}
		if *spread {
			fmt.Printf(" spread=%d bounces=%d escalations=%d widened=%d pushes=%d stale-serves=%d",
				res.SpreadReads, res.StaleBounces, res.Escalations,
				res.HotWidenings, res.MapPushes, res.StaleServes)
		}
		if *monitored {
			fmt.Printf(" monitored=%d/%d", res.MonitorSampled, res.MonitorEvents)
		}
		if *linearize {
			fmt.Printf(" reads=%d linear=%dops/%dkeys", res.Reads, res.LinearOps, res.LinearKeys)
		}
		fmt.Println()
		for _, v := range res.Violations {
			fmt.Printf("    violation: %s\n", v)
		}
		totals.acked += res.Acked
		totals.failed += res.Failed
		totals.retries += res.Retries
		totals.rebinds += res.Rebinds
		totals.suspected += res.Suspected
		totals.removed += res.Removed
		totals.rejoined += res.Rejoined
		totals.viols += len(res.Violations)
		totals.recoveries += res.Recoveries
		totals.deltaBytes += res.DeltaBytes
		totals.fullBytes += res.FullBytes
		totals.fsyncs += res.Fsyncs
		totals.snapshots += res.Snapshots
	}
	fmt.Printf("total: %d campaign(s), acked=%d failed=%d retries=%d rebinds=%d suspected=%d removed=%d rejoined=%d violations=%d\n",
		len(list), totals.acked, totals.failed, totals.retries, totals.rebinds,
		totals.suspected, totals.removed, totals.rejoined, totals.viols)
	if *durable {
		fmt.Printf("durable: recoveries=%d fsyncs=%d snapshots=%d delta-bytes=%d full-bytes=%d\n",
			totals.recoveries, totals.fsyncs, totals.snapshots, totals.deltaBytes, totals.fullBytes)
	}
	if violated {
		os.Exit(1)
	}
}
