// Stubgen is the stub compiler (§7.1): it translates a Courier-subset
// interface specification into Go client stubs and a server skeleton
// that communicate through the circus runtime.
//
// Usage:
//
//	stubgen -o bankrpc/bankrpc.go -pkg bankrpc bank.courier
//
// The generated file contains Go declarations for the interface's
// types, one client method and one server-dispatch case per procedure,
// error values for its Courier ERRORs, and Import/Export helpers wired
// to the binding agent under the program's name.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"path/filepath"

	"circus/internal/gen"
	"circus/internal/idl"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	pkg := flag.String("pkg", "", "generated package name (default: lower-cased program name)")
	iface := flag.String("interface", "", "binding-agent interface name (default: program name)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: stubgen [-o file] [-pkg name] [-interface name] spec.courier")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := idl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	code, err := gen.Generate(prog, gen.Options{Package: *pkg, InterfaceName: *iface})
	if err != nil {
		fatal(err)
	}
	formatted, err := format.Source(code)
	if err != nil {
		// Emit the raw code to aid debugging, but fail.
		os.Stdout.Write(code)
		fatal(fmt.Errorf("generated code does not format: %w", err))
	}
	if *out == "" {
		os.Stdout.Write(formatted)
		return
	}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, formatted, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stubgen:", err)
	os.Exit(1)
}
