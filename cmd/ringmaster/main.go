// Ringmaster runs a standalone binding agent member over real UDP
// (§6.3): other OS processes on this machine point circus.WithBinder
// at its printed address. Start several (on different ports) to form a
// replicated binding agent troupe.
//
//	ringmaster -port 911           # the well-known port of §6.3
//	ringmaster -port 0 -gc 30s     # ephemeral port, sweep every 30 s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"circus"
)

func main() {
	port := flag.Uint("port", 911, "UDP port to listen on (0 = ephemeral)")
	gcEvery := flag.Duration("gc", 0, "garbage-collect unreachable members at this interval (0 = never)")
	flag.Parse()

	node, err := circus.ListenUDP(uint16(*port))
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	addr, err := node.ServeRingmaster()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ringmaster serving at %v (module %d)\n", addr.Addr, addr.Module)

	if *gcEvery > 0 {
		// The sweeper needs a binder client pointing at ourselves.
		sweeper, err := circus.ListenUDP(0, circus.WithBinder([]circus.ModuleAddr{addr}))
		if err != nil {
			log.Fatal(err)
		}
		defer sweeper.Close()
		go func() {
			ticker := time.NewTicker(*gcEvery)
			defer ticker.Stop()
			for range ticker.C {
				ctx, cancel := context.WithTimeout(context.Background(), *gcEvery)
				removed, err := sweeper.GarbageCollect(ctx, 2*time.Second)
				cancel()
				if err != nil {
					log.Printf("gc: %v", err)
				} else if removed > 0 {
					log.Printf("gc: removed %d unreachable members", removed)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down")
}
