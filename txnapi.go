package circus

import (
	"time"

	"circus/internal/core"
	"circus/internal/txn"
)

// Replicated lightweight transactions (§5), re-exported. A replicated
// transactional store is a troupe of TransactionalStore modules; the
// client brackets sequences of replicated calls into transactions
// committed by the troupe commit protocol of §5.3, with deadlock
// aborts retried under binary exponential back-off (§5.3.1).
type (
	// ReplicatedStore is the client handle of a replicated
	// transactional store.
	ReplicatedStore = txn.RemoteStore
	// ReplicatedTx is one transaction attempt over a replicated
	// store.
	ReplicatedTx = txn.RemoteTx
	// TxRetry tunes transaction retry behaviour.
	TxRetry = txn.RetryOptions
)

// ErrTxAborted reports that the troupe commit round decided to abort.
var ErrTxAborted = txn.ErrAborted

// NewTransactionalStore returns a server module implementing a
// transactional key-value store suitable for replication: export one
// instance per troupe member. Transactions idle longer than ttl are
// presumed abandoned and aborted (zero means 30 seconds). The module
// supports state transfer, so members can join a running troupe.
func NewTransactionalStore(ttl time.Duration) Module {
	return txn.NewStoreModule(txn.NewStore(txn.DetectDeadlock), ttl)
}

// NewDurableTransactionalStore is the durable variant: committed
// transactions are redo-logged to the node's disk (WithDurability)
// under the given log name and fsynced before the commit is
// acknowledged, so they survive even a whole-troupe power failure.
// Opening the store recovers whatever a previous incarnation committed
// — the newest snapshot plus the log tail, tolerant of a torn final
// record. Each troupe member needs its own disk, exactly as each has
// its own memory.
func (n *Node) NewDurableTransactionalStore(name string, ttl time.Duration) (Module, error) {
	log, rec, err := n.OpenWAL(name)
	if err != nil {
		return nil, err
	}
	store, err := txn.OpenDurableStore(txn.DetectDeadlock, log, rec)
	if err != nil {
		log.Close()
		return nil, err
	}
	return txn.NewStoreModule(store, ttl), nil
}

// ReplicatedStoreFor prepares a transactional client of the store
// troupe behind stub. The node's binding agent (or, without one, the
// stub's current membership) tells the commit coordinator how many
// member votes each commit round must gather (§5.3).
func (n *Node) ReplicatedStoreFor(stub *Stub) *ReplicatedStore {
	t := stub.Troupe()
	var resolver core.Resolver
	if n.binder != nil {
		resolver = n.binder
	} else {
		resolver = core.StaticResolver{t.ID: t.Members}
	}
	return txn.NewRemoteStore(n.rt, t, resolver)
}
