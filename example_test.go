package circus_test

import (
	"context"
	"fmt"

	"circus"
)

// world is the standard example scaffolding: a simulated internet with
// a binding agent.
func exampleWorld(seed int64) (*circus.SimNetwork, []circus.ModuleAddr) {
	sim := circus.NewSimNetwork(seed)
	binder, _ := sim.NewNode()
	binder.ServeRingmaster()
	return sim, binder.BinderAddrs()
}

// ExampleStub_Call shows transparent replication: a module written
// with no knowledge of troupes, replicated three ways, reached with
// one call.
func ExampleStub_Call() {
	sim, boot := exampleWorld(100)
	for i := 0; i < 3; i++ {
		n, _ := sim.NewNode(circus.WithBinder(boot))
		n.Export("greeter", circus.ModuleFunc(
			func(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
				return append([]byte("hello, "), args...), nil
			}))
	}
	client, _ := sim.NewNode(circus.WithBinder(boot))
	stub, _ := client.Import(context.Background(), "greeter")
	reply, _ := stub.Call(context.Background(), 1, []byte("world"))
	fmt.Println(string(reply))
	// Output: hello, world
}

// ExampleStub_CallEach shows explicit replication (§7.4): the caller
// consumes the generator of per-member replies and collates them
// itself.
func ExampleStub_CallEach() {
	sim, boot := exampleWorld(101)
	for i := 0; i < 3; i++ {
		i := i
		n, _ := sim.NewNode(circus.WithBinder(boot))
		n.Export("ids", circus.ModuleFunc(
			func(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
				return []byte{byte('a' + i)}, nil // members legitimately differ
			}))
	}
	client, _ := sim.NewNode(circus.WithBinder(boot))
	stub, _ := client.Import(context.Background(), "ids")
	items, n := stub.CallEach(context.Background(), 1, nil)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		it := <-items
		if it.Err == nil {
			seen[it.Data[0]-'a'] = true
		}
	}
	fmt.Println(seen[0] && seen[1] && seen[2])
	// Output: true
}

// ExampleParseSpec shows the troupe configuration language of §7.5.
func ExampleParseSpec() {
	spec, _ := circus.ParseSpec(
		`troupe(x, y) where x.memory >= 10 and y.has-floating-point`)
	universe := []circus.Machine{
		{Name: "UCB-Monet", Attrs: map[string]circus.Value{"memory": 10.0, "has-floating-point": true}},
		{Name: "UCB-Degas", Attrs: map[string]circus.Value{"memory": 4.0, "has-floating-point": true}},
	}
	machines, _ := circus.SolveSpec(spec, universe)
	fmt.Println(machines[0].Name, machines[1].Name)
	// Output: UCB-Monet UCB-Degas
}

// ExampleAvailability reproduces the worked example of §6.4.2: how
// quickly must a failed member of a 3-member troupe be replaced to
// sustain 99.9% availability with one-hour member lifetimes?
func ExampleAvailability() {
	repairHours := circus.RequiredRepairTime(3, 1.0, 0.999)
	fmt.Printf("replace within %.0f minutes %.0f seconds\n",
		float64(int(repairHours*60)), repairHours*3600-float64(int(repairHours*60))*60)
	// Output: replace within 6 minutes 40 seconds
}

// ExampleNewCollator shows an application-specific collator (§7.4):
// accepting the numerically smallest reply.
func ExampleNewCollator() {
	sim, boot := exampleWorld(102)
	for _, v := range []byte{30, 10, 20} {
		v := v
		n, _ := sim.NewNode(circus.WithBinder(boot))
		n.Export("bid", circus.ModuleFunc(
			func(call *circus.ServerCall, proc uint16, args []byte) ([]byte, error) {
				return []byte{v}, nil
			}))
	}
	client, _ := sim.NewNode(circus.WithBinder(boot))
	stub, _ := client.Import(context.Background(), "bid")

	lowest := func(n int) circus.Collator {
		return circus.NewCollator(n, func(items []circus.Reply) ([]byte, error) {
			best := []byte{255}
			for _, it := range items {
				if it.Err == nil && it.Data[0] < best[0] {
					best = it.Data
				}
			}
			return best, nil
		})
	}
	reply, _ := stub.Call(context.Background(), 1, nil, circus.WithCollator(lowest))
	fmt.Println(reply[0])
	// Output: 10
}
