package circus

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"circus/internal/wire"
)

// world is a simulated internet with a binding agent, ready for
// exports and imports.
type world struct {
	t    *testing.T
	sim  *SimNetwork
	boot []ModuleAddr
}

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	sim := NewSimNetwork(seed)
	binderNode, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { binderNode.Close() })
	addr, err := binderNode.ServeRingmaster()
	if err != nil {
		t.Fatal(err)
	}
	return &world{t: t, sim: sim, boot: []ModuleAddr{addr}}
}

func (w *world) node(opts ...Option) *Node {
	w.t.Helper()
	opts = append(opts, WithBinder(w.boot))
	n, err := w.sim.NewNode(opts...)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { n.Close() })
	return n
}

// counter is an echo module counting executions.
type counter struct{ execs atomic.Int64 }

func (c *counter) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	switch proc {
	case 1:
		c.execs.Add(1)
		return args, nil
	default:
		return nil, ErrNoSuchProc
	}
}

func TestQuickstartFlow(t *testing.T) {
	w := newWorld(t, 1)
	var mods []*counter
	for i := 0; i < 3; i++ {
		n := w.node()
		m := &counter{}
		if _, err := n.Export("echo", m); err != nil {
			t.Fatalf("Export: %v", err)
		}
		mods = append(mods, m)
	}
	client := w.node()
	stub, err := client.Import(context.Background(), "echo")
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if stub.Troupe().Degree() != 3 {
		t.Fatalf("degree = %d", stub.Troupe().Degree())
	}
	got, err := stub.Call(context.Background(), 1, []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	for i, m := range mods {
		if m.execs.Load() != 1 {
			t.Errorf("member %d executed %d times", i, m.execs.Load())
		}
	}
}

func TestCallSurvivesMemberCrash(t *testing.T) {
	w := newWorld(t, 2)
	var nodes []*Node
	for i := 0; i < 3; i++ {
		n := w.node()
		if _, err := n.Export("svc", &counter{}); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	client := w.node()
	stub, err := client.Import(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	w.sim.Crash(nodes[1])
	got, err := stub.Call(context.Background(), 1, []byte("on"))
	if err != nil {
		t.Fatalf("Call with crashed member: %v", err)
	}
	if string(got) != "on" {
		t.Fatalf("got %q", got)
	}
}

func TestTransparentRebindAfterMembershipChange(t *testing.T) {
	w := newWorld(t, 3)
	n1 := w.node()
	if _, err := n1.Export("svc", &counter{}); err != nil {
		t.Fatal(err)
	}
	client := w.node()
	stub, err := client.Import(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Call(context.Background(), 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	oldID := stub.Troupe().ID

	// Membership changes behind the stub's back.
	n2 := w.node()
	if _, err := n2.Export("svc", &counter{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let set_troupe_id land

	got, err := stub.Call(context.Background(), 1, []byte("b"))
	if err != nil {
		t.Fatalf("call after membership change: %v", err)
	}
	if string(got) != "b" {
		t.Fatalf("got %q", got)
	}
	if stub.Troupe().ID == oldID {
		t.Fatal("stub did not rebind")
	}
	if stub.Troupe().Degree() != 2 {
		t.Fatalf("degree after rebind = %d", stub.Troupe().Degree())
	}
}

// kvModule is a replicated key-value module with state transfer.
type kvModule struct {
	data map[string]string
}

func newKV() *kvModule { return &kvModule{data: map[string]string{}} }

type kvArgs struct{ K, V string }

func (m *kvModule) Dispatch(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
	var a kvArgs
	if err := Unmarshal(args, &a); err != nil {
		return nil, err
	}
	switch proc {
	case 1: // put
		m.data[a.K] = a.V
		return nil, nil
	case 2: // get
		v, ok := m.data[a.K]
		if !ok {
			return nil, &AppError{Msg: "no such key"}
		}
		return Marshal(v)
	default:
		return nil, ErrNoSuchProc
	}
}

func (m *kvModule) GetState() ([]byte, error) { return Marshal(m.data) }
func (m *kvModule) SetState(b []byte) error {
	m.data = map[string]string{}
	return Unmarshal(b, &m.data)
}

func TestJoinTroupeStateTransfer(t *testing.T) {
	w := newWorld(t, 4)
	n1 := w.node()
	if _, err := n1.Export("kv", newKV()); err != nil {
		t.Fatal(err)
	}
	client := w.node()
	stub, err := client.Import(context.Background(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	ctx := client.Context(context.Background())
	put, _ := Marshal(kvArgs{K: "color", V: "red"})
	if _, err := stub.Call(ctx, 1, put); err != nil {
		t.Fatalf("put: %v", err)
	}

	// A new member joins with state transfer (§6.4.1).
	n2 := w.node()
	joined := newKV()
	if _, err := n2.JoinTroupe(context.Background(), "kv", joined); err != nil {
		t.Fatalf("JoinTroupe: %v", err)
	}
	if joined.data["color"] != "red" {
		t.Fatalf("state not transferred: %v", joined.data)
	}

	// The joined member participates in subsequent calls.
	stub2, err := client.Import(context.Background(), "kv")
	if err != nil {
		t.Fatal(err)
	}
	get, _ := Marshal(kvArgs{K: "color"})
	res, err := stub2.Call(client.Context(context.Background()), 2, get)
	if err != nil {
		t.Fatalf("get from extended troupe: %v", err)
	}
	var v string
	Unmarshal(res, &v)
	if v != "red" {
		t.Fatalf("got %q", v)
	}
	if stub2.Troupe().Degree() != 2 {
		t.Fatalf("degree = %d", stub2.Troupe().Degree())
	}
}

func TestJoinTroupeFreshName(t *testing.T) {
	w := newWorld(t, 5)
	n := w.node()
	if _, err := n.JoinTroupe(context.Background(), "fresh", newKV()); err != nil {
		t.Fatalf("JoinTroupe on fresh name: %v", err)
	}
}

func TestAppErrorSurfacesThroughStub(t *testing.T) {
	w := newWorld(t, 6)
	n := w.node()
	if _, err := n.Export("kv", newKV()); err != nil {
		t.Fatal(err)
	}
	client := w.node()
	stub, _ := client.Import(context.Background(), "kv")
	get, _ := Marshal(kvArgs{K: "ghost"})
	_, err := stub.Call(context.Background(), 2, get)
	var app *AppError
	if !errors.As(err, &app) || app.Msg != "no such key" {
		t.Fatalf("err = %v", err)
	}
}

func TestFirstComeOption(t *testing.T) {
	w := newWorld(t, 7)
	for i := 0; i < 3; i++ {
		if _, err := w.node().Export("e", &counter{}); err != nil {
			t.Fatal(err)
		}
	}
	client := w.node()
	stub, _ := client.Import(context.Background(), "e")
	got, err := stub.Call(context.Background(), 1, []byte("fast"), WithFirstCome())
	if err != nil || string(got) != "fast" {
		t.Fatalf("%q, %v", got, err)
	}
}

func TestMajorityMasksDivergence(t *testing.T) {
	w := newWorld(t, 8)
	// Two honest members, one diverging.
	honest := func() Module {
		return ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
			return []byte("v"), nil
		})
	}
	rogue := ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
		return []byte("DIVERGED"), nil
	})
	w.node().Export("m", honest())
	w.node().Export("m", honest())
	w.node().Export("m", rogue)

	client := w.node()
	stub, _ := client.Import(context.Background(), "m")

	// Unanimous detects the inconsistency.
	if _, err := stub.Call(context.Background(), 1, nil); !errors.Is(err, ErrDisagreement) {
		t.Fatalf("unanimous err = %v, want ErrDisagreement", err)
	}
	// Majority masks it.
	got, err := stub.Call(context.Background(), 1, nil, WithMajority())
	if err != nil || string(got) != "v" {
		t.Fatalf("majority: %q, %v", got, err)
	}
}

func TestCallEachGeneratorExplicitReplication(t *testing.T) {
	w := newWorld(t, 9)
	for i := 0; i < 3; i++ {
		i := i
		w.node().Export("gen", ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
			return []byte{byte(i)}, nil // members legitimately diverge
		}))
	}
	client := w.node()
	stub, _ := client.Import(context.Background(), "gen")
	items, n := stub.CallEach(context.Background(), 1, nil)
	if n != 3 {
		t.Fatalf("degree = %d", n)
	}
	seen := map[byte]bool{}
	for i := 0; i < n; i++ {
		it := <-items
		if it.Err != nil {
			t.Fatalf("item: %v", it.Err)
		}
		seen[it.Data[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("replies = %v", seen)
	}
}

func TestGarbageCollectViaFacade(t *testing.T) {
	w := newWorld(t, 10)
	n1 := w.node()
	n1.Export("gc", &counter{})
	n2 := w.node()
	n2.Export("gc", &counter{})

	w.sim.Crash(n1)
	sweeper := w.node()
	removed, err := sweeper.GarbageCollect(context.Background(), 400*time.Millisecond)
	if err != nil {
		t.Fatalf("GarbageCollect: %v", err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	stub, err := sweeper.Import(context.Background(), "gc")
	if err != nil {
		t.Fatal(err)
	}
	if stub.Troupe().Degree() != 1 {
		t.Fatalf("degree after GC = %d", stub.Troupe().Degree())
	}
}

func TestPing(t *testing.T) {
	w := newWorld(t, 11)
	w.node().Export("p", &counter{})
	client := w.node()
	stub, _ := client.Import(context.Background(), "p")
	if err := stub.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestImportUnknown(t *testing.T) {
	w := newWorld(t, 12)
	client := w.node()
	if _, err := client.Import(context.Background(), "nonesuch"); err == nil {
		t.Fatal("import of unregistered name succeeded")
	}
}

func TestNodeWithoutBinder(t *testing.T) {
	sim := NewSimNetwork(13)
	n, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Import(context.Background(), "x"); err == nil {
		t.Fatal("Import without binder succeeded")
	}
	if _, err := n.JoinTroupe(context.Background(), "x", newKV()); err == nil {
		t.Fatal("JoinTroupe without binder succeeded")
	}
	if _, err := n.GarbageCollect(context.Background(), time.Second); err == nil {
		t.Fatal("GarbageCollect without binder succeeded")
	}
}

func TestStubForStaticTroupe(t *testing.T) {
	sim := NewSimNetwork(14)
	server, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	m := &counter{}
	addr, err := server.Export("static", m)
	if err != nil {
		t.Fatal(err)
	}
	client, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stub := client.StubFor(Troupe{Members: []ModuleAddr{addr}})
	got, err := stub.Call(context.Background(), 1, []byte("direct"))
	if err != nil || string(got) != "direct" {
		t.Fatalf("%q, %v", got, err)
	}
}

func TestReplicatedBindingAgent(t *testing.T) {
	// A Ringmaster troupe of two members; exports and imports flow
	// through replicated calls to it.
	sim := NewSimNetwork(15)
	var boot []ModuleAddr
	for i := 0; i < 2; i++ {
		bn, err := sim.NewNode()
		if err != nil {
			t.Fatal(err)
		}
		defer bn.Close()
		addr, err := bn.ServeRingmaster()
		if err != nil {
			t.Fatal(err)
		}
		boot = append(boot, addr)
	}
	server, err := sim.NewNode(WithBinder(boot))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	if _, err := server.Export("dual", &counter{}); err != nil {
		t.Fatalf("export via replicated binder: %v", err)
	}
	client, err := sim.NewNode(WithBinder(boot))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stub, err := client.Import(context.Background(), "dual")
	if err != nil {
		t.Fatalf("import via replicated binder: %v", err)
	}
	if _, err := stub.Call(context.Background(), 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestUDPNodes(t *testing.T) {
	// The same stack over real UDP sockets: multi-process on one
	// machine, the repro environment of the paper.
	binderNode, err := ListenUDP(0, WithTimers(20*time.Millisecond, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer binderNode.Close()
	baddr, err := binderNode.ServeRingmaster()
	if err != nil {
		t.Fatal(err)
	}
	boot := []ModuleAddr{baddr}

	for i := 0; i < 2; i++ {
		s, err := ListenUDP(0, WithBinder(boot), WithTimers(20*time.Millisecond, 40*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Export("udp-echo", &counter{}); err != nil {
			t.Fatal(err)
		}
	}
	client, err := ListenUDP(0, WithBinder(boot), WithTimers(20*time.Millisecond, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stub, err := client.Import(context.Background(), "udp-echo")
	if err != nil {
		t.Fatal(err)
	}
	got, err := stub.Call(context.Background(), 1, []byte("over udp"))
	if err != nil || string(got) != "over udp" {
		t.Fatalf("%q, %v", got, err)
	}
}

func TestMarshalRoundTripFacade(t *testing.T) {
	type point struct{ X, Y int32 }
	b, err := Marshal(point{3, -4})
	if err != nil {
		t.Fatal(err)
	}
	var p point
	if err := Unmarshal(b, &p); err != nil || p.X != 3 || p.Y != -4 {
		t.Fatalf("%+v, %v", p, err)
	}
	// wire and facade agree.
	b2, _ := wire.Marshal(point{3, -4})
	if string(b) != string(b2) {
		t.Fatal("facade Marshal diverges from wire.Marshal")
	}
}

func TestSimStats(t *testing.T) {
	w := newWorld(t, 16)
	w.node().Export("s", &counter{})
	client := w.node()
	stub, _ := client.Import(context.Background(), "s")
	stub.Call(context.Background(), 1, []byte("x"))
	sendOps, datagrams, delivered, _ := w.sim.Stats()
	if sendOps == 0 || datagrams == 0 || delivered == 0 {
		t.Fatalf("stats: %d %d %d", sendOps, datagrams, delivered)
	}
}

func ExampleNode_Export() {
	sim := NewSimNetwork(99)
	binder, _ := sim.NewNode()
	binder.ServeRingmaster()
	boot := binder.BinderAddrs()

	for i := 0; i < 3; i++ {
		n, _ := sim.NewNode(WithBinder(boot))
		n.Export("echo", ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
			return args, nil
		}))
	}

	client, _ := sim.NewNode(WithBinder(boot))
	stub, _ := client.Import(context.Background(), "echo")
	reply, _ := stub.Call(context.Background(), 1, []byte("hi troupe"))
	fmt.Println(string(reply))
	// Output: hi troupe
}

func TestWatchdogAgreement(t *testing.T) {
	w := newWorld(t, 17)
	for i := 0; i < 3; i++ {
		w.node().Export("wd", &counter{})
	}
	client := w.node()
	stub, _ := client.Import(context.Background(), "wd")
	data, verdict, err := stub.CallWatchdog(context.Background(), 1, []byte("v"))
	if err != nil {
		t.Fatalf("CallWatchdog: %v", err)
	}
	if string(data) != "v" {
		t.Fatalf("first reply %q", data)
	}
	select {
	case err := <-verdict:
		if err != nil {
			t.Fatalf("verdict = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never reported")
	}
}

func TestWatchdogDetectsDivergence(t *testing.T) {
	w := newWorld(t, 18)
	w.node().Export("wd2", ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
		return []byte("a"), nil
	}))
	w.node().Export("wd2", ModuleFunc(func(call *ServerCall, proc uint16, args []byte) ([]byte, error) {
		return []byte("b"), nil
	}))
	client := w.node()
	stub, _ := client.Import(context.Background(), "wd2")
	_, verdict, err := stub.CallWatchdog(context.Background(), 1, nil)
	if err != nil {
		t.Fatalf("CallWatchdog: %v", err)
	}
	select {
	case err := <-verdict:
		if !errors.Is(err, ErrDisagreement) {
			t.Fatalf("verdict = %v, want ErrDisagreement", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never reported")
	}
}

func TestWatchdogAllFailed(t *testing.T) {
	w := newWorld(t, 19)
	n := w.node()
	n.Export("wd3", &counter{})
	client := w.node()
	stub, _ := client.Import(context.Background(), "wd3")
	w.sim.Crash(n)
	_, _, err := stub.CallWatchdog(context.Background(), 1, nil)
	if err == nil {
		t.Fatal("watchdog call to dead troupe succeeded")
	}
}

func TestMulticastNodeOption(t *testing.T) {
	// The facade multicast option: fewer send operations, same
	// exactly-once execution. All members must share a module number,
	// which they do when each node's first export is the service.
	sim := NewSimNetwork(20)
	binderNode, err := sim.NewNode()
	if err != nil {
		t.Fatal(err)
	}
	defer binderNode.Close()
	baddr, _ := binderNode.ServeRingmaster()
	boot := []ModuleAddr{baddr}

	var mods []*counter
	for i := 0; i < 3; i++ {
		n, err := sim.NewNode(WithBinder(boot))
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		m := &counter{}
		if _, err := n.Export("mc", m); err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	client, err := sim.NewNode(WithBinder(boot), WithMulticast())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	stub, err := client.Import(context.Background(), "mc")
	if err != nil {
		t.Fatal(err)
	}
	got, err := stub.Call(context.Background(), 1, []byte("x"))
	if err != nil || string(got) != "x" {
		t.Fatalf("%q, %v", got, err)
	}
	for i, m := range mods {
		if m.execs.Load() != 1 {
			t.Errorf("member %d executed %d times", i, m.execs.Load())
		}
	}
}

func TestReplicatedTransactionalStoreFacade(t *testing.T) {
	w := newWorld(t, 21)
	for i := 0; i < 3; i++ {
		n := w.node()
		if _, err := n.Export("ledger", NewTransactionalStore(0)); err != nil {
			t.Fatal(err)
		}
	}
	client := w.node()
	stub, err := client.Import(context.Background(), "ledger")
	if err != nil {
		t.Fatal(err)
	}
	store := client.ReplicatedStoreFor(stub)

	err = store.Run(context.Background(), TxRetry{}, func(tx *ReplicatedTx) error {
		if err := tx.Set("alice", []byte{100}); err != nil {
			return err
		}
		return tx.Set("bob", []byte{50})
	})
	if err != nil {
		t.Fatalf("transaction: %v", err)
	}

	// Transfer inside a transaction: atomic across all three members.
	err = store.Run(context.Background(), TxRetry{}, func(tx *ReplicatedTx) error {
		a, _, err := tx.Get("alice")
		if err != nil {
			return err
		}
		b, _, err := tx.Get("bob")
		if err != nil {
			return err
		}
		if err := tx.Set("alice", []byte{a[0] - 30}); err != nil {
			return err
		}
		return tx.Set("bob", []byte{b[0] + 30})
	})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}

	var got []byte
	err = store.Run(context.Background(), TxRetry{}, func(tx *ReplicatedTx) error {
		a, _, err := tx.Get("alice")
		if err != nil {
			return err
		}
		b, _, err := tx.Get("bob")
		if err != nil {
			return err
		}
		got = []byte{a[0], b[0]}
		return nil
	})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got[0] != 70 || got[1] != 80 {
		t.Fatalf("balances = %v, want [70 80]", got)
	}
}

// TestCrashReplaceLoop is the full Chapter 6 lifecycle, repeated: a
// member crashes, the garbage collector removes it from the binding
// agent, a replacement joins with state transfer, and client traffic
// flows throughout with transparent rebinding. State must survive
// every generation and all members must stay unanimous.
func TestCrashReplaceLoop(t *testing.T) {
	w := newWorld(t, 22)

	live := make([]*Node, 0, 3)
	for i := 0; i < 3; i++ {
		n := w.node()
		if _, err := n.JoinTroupe(context.Background(), "store", newKV()); err != nil {
			t.Fatal(err)
		}
		live = append(live, n)
	}
	client := w.node()
	stub, err := client.Import(context.Background(), "store")
	if err != nil {
		t.Fatal(err)
	}

	put := func(k, v string) {
		t.Helper()
		args, _ := Marshal(kvArgs{K: k, V: v})
		if _, err := stub.Call(client.Context(context.Background()), 1, args); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	get := func(k string) string {
		t.Helper()
		args, _ := Marshal(kvArgs{K: k})
		res, err := stub.Call(client.Context(context.Background()), 2, args)
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		var v string
		Unmarshal(res, &v)
		return v
	}

	put("epoch", "0")
	for gen := 1; gen <= 3; gen++ {
		// Kill the oldest member.
		w.sim.Crash(live[0])
		live = live[1:]

		// Sweep it out of the binding agent.
		if _, err := client.GarbageCollect(context.Background(), 500*time.Millisecond); err != nil {
			t.Fatalf("gen %d gc: %v", gen, err)
		}

		// Service still answers during the degraded window.
		put("epoch", fmt.Sprint(gen))
		if got := get("epoch"); got != fmt.Sprint(gen) {
			t.Fatalf("gen %d: epoch = %q", gen, got)
		}

		// A replacement joins with state transfer (§6.4.1).
		repl := w.node()
		if _, err := repl.JoinTroupe(context.Background(), "store", newKV()); err != nil {
			t.Fatalf("gen %d join: %v", gen, err)
		}
		live = append(live, repl)

		// The extended troupe answers unanimously: the replacement's
		// transferred state agrees with the survivors'.
		if got := get("epoch"); got != fmt.Sprint(gen) {
			t.Fatalf("gen %d after join: epoch = %q", gen, got)
		}
	}
	if stub.Troupe().Degree() != 3 {
		t.Fatalf("final degree = %d, want 3", stub.Troupe().Degree())
	}
}
