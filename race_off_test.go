//go:build !race

package circus

const raceEnabled = false
