package circus

import (
	"context"
	"testing"

	"circus/internal/wal"
)

// TestDurableTransactionalStoreSurvivesPowerLoss drives the public
// durability surface end to end: a replicated transactional store
// whose members write-ahead log to injected disks, a whole-troupe
// power loss (every machine and page cache gone at once — the failure
// replication cannot mask), and a cold boot of an entirely new troupe
// from the same disks. Every committed transaction must be there.
func TestDurableTransactionalStoreSurvivesPowerLoss(t *testing.T) {
	disks := []*wal.MemFS{wal.NewMemFS(1), wal.NewMemFS(2), wal.NewMemFS(3)}
	boot := func(w *world) *ReplicatedStore {
		t.Helper()
		for i := range disks {
			n := w.node(WithDurability(Durability{FS: disks[i], SnapshotEvery: 4}))
			mod, err := n.NewDurableTransactionalStore("ledger", 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Export("ledger", mod); err != nil {
				t.Fatal(err)
			}
		}
		client := w.node()
		stub, err := client.Import(context.Background(), "ledger")
		if err != nil {
			t.Fatal(err)
		}
		return client.ReplicatedStoreFor(stub)
	}
	read := func(store *ReplicatedStore) (alice, bob byte) {
		t.Helper()
		err := store.Run(context.Background(), TxRetry{}, func(tx *ReplicatedTx) error {
			a, _, err := tx.Get("alice")
			if err != nil {
				return err
			}
			b, _, err := tx.Get("bob")
			if err != nil {
				return err
			}
			alice, bob = a[0], b[0]
			return nil
		})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return alice, bob
	}

	store := boot(newWorld(t, 31))
	err := store.Run(context.Background(), TxRetry{}, func(tx *ReplicatedTx) error {
		if err := tx.Set("alice", []byte{100}); err != nil {
			return err
		}
		return tx.Set("bob", []byte{50})
	})
	if err != nil {
		t.Fatalf("transaction: %v", err)
	}
	err = store.Run(context.Background(), TxRetry{}, func(tx *ReplicatedTx) error {
		a, _, err := tx.Get("alice")
		if err != nil {
			return err
		}
		b, _, err := tx.Get("bob")
		if err != nil {
			return err
		}
		if err := tx.Set("alice", []byte{a[0] - 30}); err != nil {
			return err
		}
		return tx.Set("bob", []byte{b[0] + 30})
	})
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}

	// The whole troupe loses power at once: memory and page caches are
	// gone, the disks keep only what was fsynced plus a torn tail.
	for _, d := range disks {
		d.Crash()
		d.Restart()
	}

	// Cold boot: a brand-new simulated internet, binding agent, and
	// member processes, sharing nothing with the old world but the
	// disks. Committed state must come back exactly.
	store2 := boot(newWorld(t, 32))
	if a, b := read(store2); a != 70 || b != 80 {
		t.Fatalf("recovered balances = [%d %d], want [70 80]", a, b)
	}

	// And the recovered store is live: it keeps committing durably.
	err = store2.Run(context.Background(), TxRetry{}, func(tx *ReplicatedTx) error {
		return tx.Set("alice", []byte{10})
	})
	if err != nil {
		t.Fatalf("post-recovery transaction: %v", err)
	}
	if a, b := read(store2); a != 10 || b != 80 {
		t.Fatalf("post-recovery balances = [%d %d], want [10 80]", a, b)
	}
}
